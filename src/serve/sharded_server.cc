#include "serve/sharded_server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <limits>
#include <thread>
#include <utility>

#include "graph/builder.h"
#include "obs/collectors.h"
#include "pipeline/partition.h"
#include "serve/checkpoint.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace glp::serve {

using graph::Label;
using graph::TimedEdge;
using graph::VertexId;

namespace {

/// Same transient/fatal split as StreamServer: flaky IO, device faults
/// (Internal), and pressure spikes retry; everything else is fatal.
bool IsTransient(const Status& s) {
  switch (s.code()) {
    case StatusCode::kIoError:
    case StatusCode::kCapacityExceeded:
    case StatusCode::kInternal:
      return true;
    default:
      return false;
  }
}

/// Path-halving find over a parent array.
VertexId Find(std::vector<VertexId>* uf, VertexId x) {
  while ((*uf)[x] != x) {
    (*uf)[x] = (*uf)[(*uf)[x]];
    x = (*uf)[x];
  }
  return x;
}

}  // namespace

void ShardedStreamServer::EntityIntern::EnsureUniverse(size_t universe) {
  if (epoch_of.size() < universe) {
    epoch_of.assign(universe, 0);
    local_of.resize(universe);
    epoch = 0;
  }
}

void ShardedStreamServer::EntityIntern::Bump() {
  if (++epoch == 0) {  // stamp wrap
    std::fill(epoch_of.begin(), epoch_of.end(), 0u);
    epoch = 1;
  }
}

VertexId ShardedStreamServer::EntityIntern::Intern(
    VertexId g, std::vector<VertexId>* entities) {
  if (epoch_of[g] != epoch) {
    epoch_of[g] = epoch;
    local_of[g] = static_cast<VertexId>(entities->size());
    entities->push_back(g);
  }
  return local_of[g];
}

ShardedStreamServer::ShardedStreamServer(ServerConfig config, int num_shards)
    : config_(std::move(config)),
      num_shards_(num_shards),
      pmap_(std::make_shared<const pipeline::PartitionMap>(num_shards)),
      sampler_(config_.trace.sample_rate, config_.trace.sample_seed) {
  // owner_of_ stores shard indices in a byte; 256 shards is far past the
  // point where per-shard fixed costs dominate anyway.
  GLP_CHECK(num_shards >= 1 && num_shards <= 256)
      << "num_shards out of range";
  windows_.resize(num_shards);
  shards_.resize(num_shards);
  owners_.resize(num_shards);
  for (ShardScratch& s : shards_) s.owner_buckets.resize(num_shards);
  // Per-shard range cursors for incremental mode. The cursors hold
  // pointers into windows_, so every operation that resizes windows_ —
  // restore and live resharding — rebuilds them immediately afterwards.
  range_cursors_.reserve(num_shards);
  for (int k = 0; k < num_shards; ++k) {
    range_cursors_.emplace_back(&windows_[k]);
  }

  if (config_.metrics != nullptr) {
    registry_ = config_.metrics;
  } else {
    owned_registry_ = std::make_unique<obs::MetricRegistry>();
    registry_ = owned_registry_.get();
  }
  // Aggregate instruments: the exact glp_serve_* families StreamServer
  // exports, so ServerStats, dashboards, and the JSON dump work unchanged
  // against a sharded deployment.
  ins_.tick_seconds = registry_->GetHistogram(
      "glp_serve_tick_seconds", "Wall time of one detection tick");
  ins_.warm_ticks = registry_->GetCounter(
      "glp_serve_ticks_total", "Detection ticks run", {{"mode", "warm"}});
  ins_.cold_ticks = registry_->GetCounter(
      "glp_serve_ticks_total", "Detection ticks run", {{"mode", "cold"}});
  ins_.warm_iterations = registry_->GetCounter(
      "glp_serve_lp_iterations_total", "LP iterations run by detection ticks",
      {{"mode", "warm"}});
  ins_.cold_iterations = registry_->GetCounter(
      "glp_serve_lp_iterations_total", "LP iterations run by detection ticks",
      {{"mode", "cold"}});
  ins_.batches_ingested = registry_->GetCounter(
      "glp_serve_batches_ingested_total", "Edge batches accepted by Ingest");
  ins_.edges_ingested = registry_->GetCounter(
      "glp_serve_edges_ingested_total", "Edges accepted by Ingest");
  ins_.ingest_blocked = registry_->GetCounter(
      "glp_serve_ingest_blocked_total",
      "Times Ingest blocked on a full queue (backpressure)");
  ins_.queue_depth = registry_->GetGauge(
      "glp_serve_queue_depth", "Batches waiting in the ingest queue");
  ins_.queue_peak = registry_->GetGauge(
      "glp_serve_queue_peak", "High-water mark of the ingest queue");
  ins_.ingest_lag_days = registry_->GetGauge(
      "glp_serve_ingest_lag_days",
      "Newest ingested timestamp minus the last tick's window end");
  ins_.batches_rejected_invalid = registry_->GetCounter(
      "glp_serve_batches_rejected_total",
      "Ingest batches rejected instead of entering the window",
      {{"reason", "invalid"}});
  ins_.batches_rejected_failpoint = registry_->GetCounter(
      "glp_serve_batches_rejected_total",
      "Ingest batches rejected instead of entering the window",
      {{"reason", "failpoint"}});
  ins_.batches_dropped = registry_->GetCounter(
      "glp_serve_batches_rejected_total",
      "Ingest batches rejected instead of entering the window",
      {{"reason", "append_failed"}});
  ins_.ticks_shed = registry_->GetCounter(
      "glp_serve_ticks_shed_total",
      "Overdue tick boundaries coalesced away under overload");
  ins_.degraded_ticks = registry_->GetCounter(
      "glp_serve_degraded_ticks_total",
      "Ticks run with the degraded LP iteration cap");
  ins_.deadline_overruns = registry_->GetCounter(
      "glp_serve_deadline_overruns_total",
      "Ticks whose wall time exceeded tick_deadline_seconds");
  ins_.tick_retries = registry_->GetCounter(
      "glp_serve_tick_retries_total",
      "Retry attempts after transient tick failures");
  ins_.ticks_failed = registry_->GetCounter(
      "glp_serve_ticks_failed_total",
      "Ticks abandoned after exhausting retries");
  ins_.engine_fallbacks = registry_->GetCounter(
      "glp_serve_fallbacks_total", "Degraded-path fallbacks taken",
      {{"kind", "engine"}});
  ins_.warm_fallbacks = registry_->GetCounter(
      "glp_serve_fallbacks_total", "Degraded-path fallbacks taken",
      {{"kind", "warm_to_cold"}});
  ins_.cold_refresh_deferred = registry_->GetCounter(
      "glp_serve_cold_refresh_deferred_total",
      "Cold refreshes postponed by the degradation ladder");
  ins_.checkpoints_ok = registry_->GetCounter(
      "glp_serve_checkpoints_total", "Periodic checkpoint attempts",
      {{"result", "ok"}});
  ins_.checkpoints_failed = registry_->GetCounter(
      "glp_serve_checkpoints_total", "Periodic checkpoint attempts",
      {{"result", "error"}});
  ins_.dirty_components = registry_->GetGauge(
      "glp_serve_dirty_components",
      "Components whose edge set changed in the last incremental tick");
  ins_.reused_clusters = registry_->GetCounter(
      "glp_serve_reused_clusters_total",
      "Clean-component cluster records reused verbatim by incremental ticks");
  ins_.incremental_rebuilds = registry_->GetCounter(
      "glp_serve_incremental_rebuilds_total",
      "Incremental-mode ticks that fell back to a full rebuild");
  ins_.wal_appends_ok = registry_->GetCounter(
      "glp_serve_wal_appends_total", "WAL append attempts",
      {{"result", "ok"}});
  ins_.wal_appends_failed = registry_->GetCounter(
      "glp_serve_wal_appends_total", "WAL append attempts",
      {{"result", "error"}});
  ins_.wal_duplicates = registry_->GetCounter(
      "glp_serve_wal_duplicates_total",
      "Replicated batches suppressed as already-logged duplicates");
  ins_.wal_fenced = registry_->GetCounter(
      "glp_serve_wal_fenced_total",
      "Replicated batches rejected for carrying a deposed fencing epoch");
  ins_.wal_replayed_batches = registry_->GetCounter(
      "glp_serve_wal_replayed_batches_total",
      "Batches recovered from the WAL during restore");
  ins_.wal_pruned_segments = registry_->GetCounter(
      "glp_serve_wal_pruned_segments_total",
      "WAL segments garbage-collected after covering checkpoints");
  ins_.wal_fsyncs = registry_->GetCounter(
      "glp_serve_wal_fsyncs_total", "WAL fsync calls (group commit)");
  ins_.wal_bytes = registry_->GetCounter(
      "glp_serve_wal_bytes_total", "Frame bytes appended to the WAL");
  ins_.wal_last_seq = registry_->GetGauge(
      "glp_serve_wal_last_seq", "Highest WAL sequence number appended");
  ins_.wal_epoch = registry_->GetGauge(
      "glp_serve_wal_epoch", "Current WAL fencing epoch");
  ins_.wal_segments = registry_->GetGauge(
      "glp_serve_wal_segments", "Live WAL segment files");
  ins_.reshards_ok = registry_->GetCounter(
      "glp_serve_reshards_total", "Fleet resize (migration) attempts",
      {{"result", "ok"}});
  ins_.reshards_aborted = registry_->GetCounter(
      "glp_serve_reshards_total", "Fleet resize (migration) attempts",
      {{"result", "aborted"}});
  ins_.num_shards_gauge = registry_->GetGauge(
      "glp_serve_num_shards", "Live detection shard count");
  ins_.num_shards_gauge->Set(static_cast<double>(num_shards));
  ins_.reshard_pause_seconds = registry_->GetHistogram(
      "glp_serve_reshard_pause_seconds",
      "Wall time detection was quiesced during a fleet resize");
  // Per-shard families, one time series per shard via the {shard} label.
  EnsureShardInstruments(num_shards);
  if (config_.trace.recorder_ticks > 0) {
    recorder_ = std::make_unique<obs::FlightRecorder>(
        static_cast<size_t>(config_.trace.recorder_ticks));
  }
  obs::RegisterThreadPoolCollector(registry_, pool());
  registry_->AddCollector([registry = registry_] {
    for (const auto& [point, fires] :
         fail::FailpointRegistry::Global().FireCounts()) {
      registry
          ->GetGauge("glp_failpoint_fires",
                     "Times an armed failpoint has fired", {{"point", point}})
          ->Set(static_cast<double>(fires));
    }
  });
}

void ShardedStreamServer::EnsureShardInstruments(int n) {
  const int old = static_cast<int>(shard_ins_.size());
  if (n > old) {
    shard_ins_.resize(n);
    for (int k = old; k < n; ++k) {
      const std::string shard = std::to_string(k);
      shard_ins_[k].tick_seconds = registry_->GetHistogram(
          "glp_serve_shard_tick_seconds",
          "Per-owner-shard detection wall time within a tick",
          {{"shard", shard}});
      shard_ins_[k].edges_routed = registry_->GetCounter(
          "glp_serve_shard_edges_routed_total",
          "Edges routed to their owning shard", {{"shard", shard}});
      shard_ins_[k].edges_mirrored = registry_->GetCounter(
          "glp_serve_shard_edges_mirrored_total",
          "Cross-shard edge copies mirrored into this shard",
          {{"shard", shard}});
      shard_ins_[k].window_edges = registry_->GetGauge(
          "glp_serve_shard_window_edges",
          "Edges in this shard's window stream (mirrors included)",
          {{"shard", shard}});
      shard_ins_[k].components_owned = registry_->GetGauge(
          "glp_serve_shard_components",
          "Connected components this shard owned at the last tick",
          {{"shard", shard}});
      shard_ins_[k].inwindow_edges = registry_->GetGauge(
          "glp_serve_shard_inwindow_edges",
          "In-window edges this shard carried at the last tick (mirrors "
          "included) — the resharding heat signal",
          {{"shard", shard}});
    }
  }
  // Shards beyond the live count keep their counters (history survives a
  // shrink) but report zeroed gauges so dashboards drop the ghost windows.
  for (int k = n; k < static_cast<int>(shard_ins_.size()); ++k) {
    shard_ins_[k].window_edges->Set(0);
    shard_ins_[k].components_owned->Set(0);
    shard_ins_[k].inwindow_edges->Set(0);
  }
}

ShardedStreamServer::~ShardedStreamServer() { Stop(); }

glp::ThreadPool* ShardedStreamServer::pool() const {
  return config_.pool != nullptr ? config_.pool : glp::ThreadPool::Default();
}

void ShardedStreamServer::Subscribe(Subscriber subscriber) {
  subscribers_.push_back(std::move(subscriber));
}

Result<Server::RestoreInfo> ShardedStreamServer::RestoreFromCheckpoint(
    const std::string& path_or_dir) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (started_) {
      return Status::InvalidArgument(
          "RestoreFromCheckpoint requires a not-yet-started server");
    }
  }
  // Open (and tail-truncate) the WAL before touching checkpoints: a missing
  // or empty checkpoint dir is recoverable by pure WAL replay from an empty
  // window, so NotFound is only fatal when there is no WAL either.
  {
    const Status wst = EnsureWalOpen();
    if (!wst.ok()) return wst;
  }
  // Resolve the snapshot source. A same-fleet-shape manifest takes the
  // exact path (shard windows restored verbatim, mirrors included); any
  // other shape — more shards, fewer, or a flat StreamServer file — loads
  // through the portable view and is re-partitioned under this fleet's
  // map (DESIGN.md §4.14).
  enum class Src { kNone, kFleet, kPortable };
  Src src = Src::kNone;
  ShardedCheckpoint cp;
  PortableCheckpoint port;
  std::error_code ec;
  if (std::filesystem::is_directory(path_or_dir, ec)) {
    Result<ShardedCheckpoint> latest = LatestShardedCheckpoint(path_or_dir);
    if (latest.ok() && latest.value().manifest.num_shards == num_shards() &&
        !LatestCheckpoint(path_or_dir).ok()) {
      cp = std::move(latest).value();
      src = Src::kFleet;
    } else {
      // Any other combination — shape mismatch, flat snapshots present
      // (possibly newer than the manifest), or no manifest at all — the
      // portable loader picks the newest loadable snapshot across formats.
      auto p = LoadPortableCheckpoint(path_or_dir);
      if (p.ok()) {
        port = std::move(p).value();
        src = Src::kPortable;
      } else if (p.status().code() == StatusCode::kNotFound &&
                 wal_ != nullptr) {
        src = Src::kNone;  // pure WAL replay from an empty window
      } else {
        return p.status();
      }
    }
  } else if (!std::filesystem::exists(path_or_dir, ec) && wal_ != nullptr) {
    src = Src::kNone;
  } else if (path_or_dir.size() > 4 &&
             path_or_dir.substr(path_or_dir.size() - 4) == ".smf") {
    GLP_ASSIGN_OR_RETURN(cp, LoadShardedCheckpoint(path_or_dir));
    if (cp.manifest.num_shards == num_shards()) {
      src = Src::kFleet;
    } else {
      GLP_ASSIGN_OR_RETURN(port, LoadPortableCheckpoint(path_or_dir));
      src = Src::kPortable;
    }
  } else {
    GLP_ASSIGN_OR_RETURN(port, LoadPortableCheckpoint(path_or_dir));
    src = Src::kPortable;
  }
  CheckpointData empty_coord;
  const CheckpointData* coord = &empty_coord;
  global_edges_ = 0;
  warm_anchor_.clear();
  if (src == Src::kFleet) {
    coord = &cp.coord;
    // Adopt the snapshot's own partition map (manifest v3; the default
    // hash map for older files) as the live routing map.
    const pipeline::PartitionMap cp_map = cp.manifest.PartitionMapOf();
    for (int k = 0; k < num_shards(); ++k) {
      for (const TimedEdge& e : cp.shards[k].edges) {
        // A shard file holds owned edges plus mirrors; only owned copies
        // count toward the global replay position.
        if (cp_map.PartOf(e.src) == k) ++global_edges_;
      }
      windows_[k] = graph::SlidingWindow(std::move(cp.shards[k].edges));
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      pmap_ = std::make_shared<const pipeline::PartitionMap>(cp_map);
    }
    // Coordinator warm anchors are stored directly as entity→anchor pairs.
    for (size_t i = 0; i < cp.coord.prev_l2g.size(); ++i) {
      warm_anchor_[cp.coord.prev_l2g[i]] =
          static_cast<VertexId>(cp.coord.prev_labels[i]);
    }
  } else if (src == Src::kPortable) {
    coord = &port.data;
    // Shape-changing restore: re-route the reconstructed global canonical
    // stream under this fleet's own map. RouteBatch re-derives mirrors, so
    // the rebuilt shard windows are exactly what an uninterrupted run on
    // this shape would hold — no edge lost, none duplicated.
    global_edges_ = port.data.edges.size();
    RoutedBatch rb = RouteBatch(port.data.edges, *pmap_);
    for (int k = 0; k < num_shards(); ++k) {
      windows_[k] = graph::SlidingWindow(std::move(rb.parts[k]));
    }
    // Warm anchors arrive in the flat encoding (prev_labels indexes
    // prev_l2g); re-express them as the entity→anchor map.
    for (size_t i = 0; i < port.data.prev_l2g.size(); ++i) {
      const Label pl = port.data.prev_labels[i];
      if (pl == graph::kInvalidLabel ||
          static_cast<size_t>(pl) >= port.data.prev_l2g.size()) {
        continue;
      }
      warm_anchor_[port.data.prev_l2g[i]] = port.data.prev_l2g[pl];
    }
    if (port.source_shards != num_shards()) {
      GLP_LOG(Info) << "resharding checkpoint: " << port.source_shards
                    << " -> " << num_shards() << " shards ("
                    << global_edges_ << " stream edges re-routed)";
    }
  }
  num_ticks_ = coord->tick;
  tick_schedule_primed_ = coord->tick_schedule_primed;
  next_tick_end_ = coord->next_tick_end;
  have_prev_ = coord->have_prev;
  prev_confirmed_.clear();
  for (const auto& members : coord->prev_confirmed) {
    prev_confirmed_.insert(members);
  }
  last_checkpoint_tick_ = coord->tick;
  last_tick_wall_seconds_ = 0;
  refresh_pending_ = false;
  inc_reuse_ok_ = false;
  records_valid_ = false;
  records_.clear();
  if (config_.tick.incremental && coord->has_incremental &&
      tick_schedule_primed_) {
    // Rebuild the fleet union-find from the restored shard windows (clean:
    // the checkpointed labels are authoritative) and re-prime every shard
    // range cursor at the last completed tick so the next advance yields an
    // exact delta. Cluster records are not checkpointed, so the first
    // post-restore tick extracts all clusters but still reuses clean labels.
    const double last_end = next_tick_end_ - config_.tick.every_days;
    const double last_start = last_end - config_.detect.window_days;
    universe_ = 0;
    for (const graph::SlidingWindow& w : windows_) {
      if (w.num_stream_edges() == 0) continue;
      universe_ =
          std::max(universe_, static_cast<size_t>(w.max_entity()) + 1);
    }
    anchor_of_.assign(universe_, graph::kInvalidVertex);
    bool anchors_ok = true;
    for (size_t i = 0; i < coord->inc_entities.size(); ++i) {
      if (static_cast<size_t>(coord->inc_entities[i]) >= universe_ ||
          static_cast<size_t>(coord->inc_anchors[i]) >= universe_) {
        anchors_ok = false;
        break;
      }
      anchor_of_[coord->inc_entities[i]] = coord->inc_anchors[i];
    }
    if (anchors_ok) {
      for (int k = 0; k < num_shards_; ++k) {
        range_cursors_[k].PrimeAt(last_start, last_end);
        shards_[k].lo = range_cursors_[k].lo();
        shards_[k].hi = range_cursors_[k].hi();
      }
      inc_tracker_.BeginRebuild();
      for (int k = 0; k < num_shards_; ++k) {
        inc_tracker_.AddWindowRange(windows_[k].edges(), shards_[k].lo,
                                    shards_[k].hi);
      }
      inc_tracker_.FinishRebuild(/*mark_all_dirty=*/false);
      RefreshOwnersFromTracker();
      inc_reuse_ok_ = true;
    }
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    ingested_max_time_ = coord->ingested_max_time;
  }
  StreamServer::RestoreInfo info;
  info.tick = num_ticks_;
  info.num_edges = global_edges_;
  info.max_time = coord->ingested_max_time;

  // WAL replay: frames after the checkpoint's covered sequence hold the
  // pre-routing global batches — re-route each one and re-enqueue, so the
  // detection thread re-runs the lost ticks through the normal sharded
  // path, byte-identical to the uninterrupted run.
  consumed_wal_seq_ = coord->wal_seq;
  if (wal_ != nullptr) {
    const uint64_t manifest_epoch = (src == Src::kFleet) ? cp.manifest.epoch : 0;
    const uint64_t floor_epoch = std::max(coord->wal_epoch, manifest_epoch);
    if (floor_epoch > 0) {
      const Status est = wal_->EnsureEpochAtLeast(floor_epoch);
      if (!est.ok()) return est;
    }
    auto frames = wal_->ReadFrom(coord->wal_seq + 1);
    if (!frames.ok()) return frames.status();
    uint64_t expected = coord->wal_seq + 1;
    double max_time = info.max_time;
    size_t replayed = 0;
    for (wal::WalFrame& f : frames.value()) {
      if (f.seq != expected) {
        // Frames between the checkpoint and the oldest surviving segment
        // were pruned against a newer checkpoint that no longer loads —
        // replay would silently skip batches, so refuse instead.
        return Status::IoError(
            "wal: replay gap: checkpoint covers seq " +
            std::to_string(coord->wal_seq) + " but next durable frame is " +
            std::to_string(f.seq));
      }
      ++expected;
      for (const TimedEdge& e : f.edges) {
        max_time = std::max(max_time, e.time);
      }
      info.num_edges += f.edges.size();
      global_edges_ += f.edges.size();
      // Frames hold the pre-routing global batch, so replay re-routes under
      // the CURRENT map — the WAL tail follows the fleet across a resize.
      RoutedBatch rb = RouteBatch(f.edges, *pmap_);
      rb.wal_seq = f.seq;
      rb.ctx.wal_seq = f.seq;
      rb.ctx.wal_epoch = f.epoch;
      rb.ctx.wal_wall_seconds = f.wall_seconds;
      rb.enqueue_seconds = obs::MonotonicSeconds();
      {
        std::lock_guard<std::mutex> lk(mu_);
        queue_.push_back(std::move(rb));
      }
      ++replayed;
    }
    ins_.wal_replayed_batches->Increment(replayed);
    {
      std::lock_guard<std::mutex> lk(mu_);
      ingested_max_time_ = max_time;
    }
    info.max_time = max_time;
    info.wal_seq = wal_->last_seq();
    info.wal_epoch = wal_->epoch();
    PublishWalStats();
  }
  GLP_LOG(Info) << "restored sharded "
                << (src != Src::kNone ? "checkpoint" : "(no checkpoint)")
                << " (tick " << info.tick << ", " << num_shards()
                << " shards, " << info.num_edges << " stream edges"
                << (wal_ != nullptr ? ", wal seq " +
                std::to_string(info.wal_seq) : "") << ")";
  return info;
}

Status ShardedStreamServer::Start() {
  std::lock_guard<std::mutex> lk(mu_);
  if (started_) return Status::InvalidArgument("server already started");
  if (config_.tick.every_days <= 0) {
    return Status::InvalidArgument("tick_every_days must be positive");
  }
  if (config_.max_queue_batches == 0) {
    return Status::InvalidArgument("max_queue_batches must be >= 1");
  }
  if (config_.resilience.tick_deadline_seconds < 0) {
    return Status::InvalidArgument("tick_deadline_seconds must be >= 0");
  }
  if (config_.tick.incremental) {
    // Same §4.10 exactness preconditions as StreamServer.
    const lp::RunConfig& lp = config_.detect.lp;
    if (!lp.initial_labels.empty() || !lp.synchronous ||
        config_.detect.variant == lp::VariantKind::kSlp ||
        (lp.stop_when_stable && lp.max_iterations % 2 != 0)) {
      return Status::InvalidArgument(
          "incremental serving requires synchronous LP with default "
          "initialization, a non-SLP variant, and an even iteration budget "
          "under stop_when_stable");
    }
  }
  if (!config_.checkpoint.dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.checkpoint.dir, ec);
    if (ec) {
      return Status::IoError("cannot create checkpoint dir " +
                             config_.checkpoint.dir + ": " + ec.message());
    }
  }
  {
    const Status wst = EnsureWalOpen();
    if (!wst.ok()) return wst;
  }
  started_ = true;
  stopping_ = false;
  dead_ = false;
  stop_token_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { DetectLoop(); });
  return Status::OK();
}

bool ShardedStreamServer::ValidBatch(
    const std::vector<TimedEdge>& batch) const {
  for (const TimedEdge& e : batch) {
    if (!std::isfinite(e.time) || e.time < 0) return false;
    if (e.src == graph::kInvalidVertex || e.dst == graph::kInvalidVertex) {
      return false;
    }
    if (config_.resilience.entity_id_limit != 0 &&
        (e.src >= config_.resilience.entity_id_limit ||
         e.dst >= config_.resilience.entity_id_limit)) {
      return false;
    }
  }
  return true;
}

ShardedStreamServer::RoutedBatch ShardedStreamServer::RouteBatch(
    const std::vector<TimedEdge>& batch,
    const pipeline::PartitionMap& map) const {
  // The owning shard gets every edge whose source maps to it; an edge
  // with endpoints on two shards is mirrored into the destination's shard
  // too, so both windows see their full neighborhood. The map is an
  // explicit parameter (not pmap_) so producers route against a snapshot
  // outside the lock; rb.map_version lets admission detect a concurrent
  // resize and re-route.
  RoutedBatch rb;
  const int n = map.num_parts();
  rb.parts.resize(static_cast<size_t>(n));
  rb.global_edges = batch.size();
  rb.routed.assign(static_cast<size_t>(n), 0);
  rb.mirrored.assign(static_cast<size_t>(n), 0);
  rb.map_version = map.version();
  for (const TimedEdge& e : batch) {
    const int ps = map.PartOf(e.src);
    const int pd = map.PartOf(e.dst);
    rb.parts[ps].push_back(e);
    ++rb.routed[ps];
    if (pd != ps) {
      rb.parts[pd].push_back(e);
      ++rb.mirrored[pd];
    }
  }
  return rb;
}

Status ShardedStreamServer::EnsureWalOpen() {
  if (!config_.durability.enabled() || wal_ != nullptr) return Status::OK();
  wal::WalOptions opts;
  opts.fsync_every_batches = config_.durability.fsync_every_batches;
  opts.fsync_interval_ms = config_.durability.fsync_interval_ms;
  opts.segment_max_bytes = config_.durability.segment_max_bytes;
  auto opened = wal::Wal::Open(config_.durability.dir, opts);
  if (!opened.ok()) return opened.status();
  wal_ = std::move(opened).value();
  PublishWalStats();
  return Status::OK();
}

void ShardedStreamServer::PublishWalStats() {
  if (wal_ == nullptr) return;
  const wal::WalStats s = wal_->stats();
  ins_.wal_last_seq->Set(static_cast<double>(s.last_seq));
  ins_.wal_epoch->Set(static_cast<double>(s.epoch));
  ins_.wal_segments->Set(static_cast<double>(s.segments));
  if (s.fsyncs > wal_published_fsyncs_) {
    ins_.wal_fsyncs->Increment(s.fsyncs - wal_published_fsyncs_);
    wal_published_fsyncs_ = s.fsyncs;
  }
  if (s.bytes_appended > wal_published_bytes_) {
    ins_.wal_bytes->Increment(s.bytes_appended - wal_published_bytes_);
    wal_published_bytes_ = s.bytes_appended;
  }
  if (s.pruned_segments > wal_published_pruned_) {
    ins_.wal_pruned_segments->Increment(s.pruned_segments -
                                        wal_published_pruned_);
    wal_published_pruned_ = s.pruned_segments;
  }
}

Status ShardedStreamServer::AppendToWalLocked(
    const std::vector<TimedEdge>& batch, const IngestContext& ctx,
    RoutedBatch* rb) {
  if (wal_ == nullptr) return Status::OK();
  if (ctx.wal_seq != 0) {
    wal::WalFrame frame;
    frame.seq = ctx.wal_seq;
    frame.epoch = ctx.wal_epoch;
    frame.wall_seconds = ctx.wal_wall_seconds;
    frame.edges = batch;
    const Status st = wal_->AppendFrame(frame);
    if (st.ok()) {
      rb->wal_seq = frame.seq;
      ins_.wal_appends_ok->Increment();
    } else if (st.code() == StatusCode::kAlreadyExists) {
      ins_.wal_duplicates->Increment();
    } else if (st.code() == StatusCode::kInvalidArgument) {
      ins_.wal_fenced->Increment();
    } else {
      ins_.wal_appends_failed->Increment();
    }
    PublishWalStats();
    return st;
  }
  auto seq = wal_->Append(batch, /*wall_seconds=*/0.0);
  if (!seq.ok()) {
    ins_.wal_appends_failed->Increment();
    PublishWalStats();
    return seq.status();
  }
  rb->wal_seq = seq.value();
  ins_.wal_appends_ok->Increment();
  PublishWalStats();
  return Status::OK();
}

bool ShardedStreamServer::Ingest(std::vector<TimedEdge> batch,
                                 IngestContext ctx) {
  if (!ValidBatch(batch)) {
    ins_.batches_rejected_invalid->Increment();
    return false;
  }
  const Status inj = fail::Inject("serve.ingest");
  if (!inj.ok()) {
    ins_.batches_rejected_failpoint->Increment();
    return false;
  }
  // Route outside the lock.
  double batch_max_time = 0;
  for (const TimedEdge& e : batch) {
    batch_max_time = std::max(batch_max_time, e.time);
  }
  const size_t batch_edges = batch.size();
  // Route outside the lock against a snapshot of the live map; a resize
  // that lands between routing and admission is caught below by the map
  // version and the batch is re-routed from the (still intact) original.
  std::shared_ptr<const pipeline::PartitionMap> map;
  {
    std::lock_guard<std::mutex> lk(mu_);
    map = pmap_;
  }
  RoutedBatch rb = RouteBatch(batch, *map);
  rb.ctx = std::move(ctx);
  rb.enqueue_seconds = obs::MonotonicSeconds();
  std::unique_lock<std::mutex> lk(mu_);
  if (!started_ || stopping_ || dead_) return false;
  if (queue_.size() >= config_.max_queue_batches) {
    ins_.ingest_blocked->Increment();
    not_full_cv_.wait(lk, [&] {
      return stopping_ || dead_ || queue_.size() < config_.max_queue_batches;
    });
    if (stopping_ || dead_) return false;
  }
  if (rb.map_version != pmap_->version()) {
    RoutedBatch rerouted = RouteBatch(batch, *pmap_);
    rerouted.ctx = std::move(rb.ctx);
    rerouted.enqueue_seconds = rb.enqueue_seconds;
    rb = std::move(rerouted);
  }
  if (wal_ != nullptr) {
    // The WAL logs the *pre-routing* wire batch (replay re-routes it).
    const Status wst = AppendToWalLocked(batch, rb.ctx, &rb);
    if (wst.code() == StatusCode::kAlreadyExists) return true;
    if (!wst.ok()) {
      ins_.batches_dropped->Increment();
      return false;
    }
  }
  ingested_max_time_ = std::max(ingested_max_time_, batch_max_time);
  ins_.batches_ingested->Increment();
  ins_.edges_ingested->Increment(batch_edges);
  for (size_t k = 0; k < rb.routed.size(); ++k) {
    if (rb.routed[k] != 0) {
      shard_ins_[k].edges_routed->Increment(rb.routed[k]);
    }
    if (rb.mirrored[k] != 0) {
      shard_ins_[k].edges_mirrored->Increment(rb.mirrored[k]);
    }
  }
  queue_.push_back(std::move(rb));
  ins_.queue_depth->Set(static_cast<double>(queue_.size()));
  ins_.queue_peak->Max(static_cast<double>(queue_.size()));
  queue_cv_.notify_one();
  return true;
}

Server::Admit ShardedStreamServer::TryIngest(std::vector<TimedEdge> batch,
                                             IngestContext ctx) {
  if (!ValidBatch(batch)) {
    ins_.batches_rejected_invalid->Increment();
    return Admit::kRejected;
  }
  const Status inj = fail::Inject("serve.ingest");
  if (!inj.ok()) {
    ins_.batches_rejected_failpoint->Increment();
    return Admit::kRejected;
  }
  double batch_max_time = 0;
  for (const TimedEdge& e : batch) {
    batch_max_time = std::max(batch_max_time, e.time);
  }
  const size_t batch_edges = batch.size();
  std::shared_ptr<const pipeline::PartitionMap> map;
  {
    std::lock_guard<std::mutex> lk(mu_);
    map = pmap_;
  }
  RoutedBatch rb = RouteBatch(batch, *map);
  rb.ctx = std::move(ctx);
  rb.enqueue_seconds = obs::MonotonicSeconds();
  std::lock_guard<std::mutex> lk(mu_);
  if (!started_ || stopping_ || dead_) return Admit::kStopped;
  if (queue_.size() >= config_.max_queue_batches) return Admit::kQueueFull;
  if (rb.map_version != pmap_->version()) {
    RoutedBatch rerouted = RouteBatch(batch, *pmap_);
    rerouted.ctx = std::move(rb.ctx);
    rerouted.enqueue_seconds = rb.enqueue_seconds;
    rb = std::move(rerouted);
  }
  if (wal_ != nullptr) {
    const Status wst = AppendToWalLocked(batch, rb.ctx, &rb);
    if (wst.code() == StatusCode::kAlreadyExists) return Admit::kAccepted;
    if (!wst.ok()) {
      ins_.batches_dropped->Increment();
      return Admit::kRejected;
    }
  }
  ingested_max_time_ = std::max(ingested_max_time_, batch_max_time);
  ins_.batches_ingested->Increment();
  ins_.edges_ingested->Increment(batch_edges);
  for (size_t k = 0; k < rb.routed.size(); ++k) {
    if (rb.routed[k] != 0) {
      shard_ins_[k].edges_routed->Increment(rb.routed[k]);
    }
    if (rb.mirrored[k] != 0) {
      shard_ins_[k].edges_mirrored->Increment(rb.mirrored[k]);
    }
  }
  queue_.push_back(std::move(rb));
  ins_.queue_depth->Set(static_cast<double>(queue_.size()));
  ins_.queue_peak->Max(static_cast<double>(queue_.size()));
  queue_cv_.notify_one();
  return Admit::kAccepted;
}

void ShardedStreamServer::Flush() {
  std::unique_lock<std::mutex> lk(mu_);
  drained_cv_.wait(lk, [&] {
    return (queue_.empty() && !busy_) || stopping_ || dead_;
  });
}

void ShardedStreamServer::Stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!started_) return;
    stopping_ = true;
    stop_token_.store(true, std::memory_order_relaxed);
    queue_cv_.notify_all();
    not_full_cv_.notify_all();
    drained_cv_.notify_all();
    checkpoint_done_cv_.notify_all();
    resize_done_cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lk(mu_);
  started_ = false;
}

Status ShardedStreamServer::last_error() const {
  std::lock_guard<std::mutex> lk(mu_);
  return last_error_;
}

bool ShardedStreamServer::running() const {
  std::lock_guard<std::mutex> lk(mu_);
  return started_ && !stopping_ && !dead_;
}

void ShardedStreamServer::RecordError(const Status& status) {
  std::lock_guard<std::mutex> lk(mu_);
  if (last_error_.ok()) last_error_ = status;
}

ServerStats ShardedStreamServer::stats() const {
  ServerStats s;
  s.warm_ticks = static_cast<int64_t>(ins_.warm_ticks->Value());
  s.cold_ticks = static_cast<int64_t>(ins_.cold_ticks->Value());
  s.ticks = s.warm_ticks + s.cold_ticks;
  s.batches_ingested = static_cast<int64_t>(ins_.batches_ingested->Value());
  s.edges_ingested = static_cast<int64_t>(ins_.edges_ingested->Value());
  s.ingest_blocked = static_cast<int64_t>(ins_.ingest_blocked->Value());
  s.queue_peak = static_cast<size_t>(ins_.queue_peak->Value());
  s.batches_rejected =
      static_cast<int64_t>(ins_.batches_rejected_invalid->Value() +
                           ins_.batches_rejected_failpoint->Value() +
                           ins_.batches_dropped->Value());
  s.ticks_shed = static_cast<int64_t>(ins_.ticks_shed->Value());
  s.degraded_ticks = static_cast<int64_t>(ins_.degraded_ticks->Value());
  s.deadline_overruns = static_cast<int64_t>(ins_.deadline_overruns->Value());
  s.tick_retries = static_cast<int64_t>(ins_.tick_retries->Value());
  s.ticks_failed = static_cast<int64_t>(ins_.ticks_failed->Value());
  s.engine_fallbacks = static_cast<int64_t>(ins_.engine_fallbacks->Value());
  s.warm_fallbacks = static_cast<int64_t>(ins_.warm_fallbacks->Value());
  s.cold_refresh_deferred =
      static_cast<int64_t>(ins_.cold_refresh_deferred->Value());
  s.checkpoints_written = static_cast<int64_t>(ins_.checkpoints_ok->Value());
  s.checkpoint_failures =
      static_cast<int64_t>(ins_.checkpoints_failed->Value());
  s.reused_clusters = static_cast<int64_t>(ins_.reused_clusters->Value());
  s.incremental_rebuilds =
      static_cast<int64_t>(ins_.incremental_rebuilds->Value());
  s.last_dirty_components =
      static_cast<int64_t>(ins_.dirty_components->Value());
  s.tick_p50_seconds = ins_.tick_seconds->Quantile(0.50);
  s.tick_p99_seconds = ins_.tick_seconds->Quantile(0.99);
  s.tick_max_seconds = ins_.tick_seconds->MaxBound();
  s.warm_avg_iterations =
      s.warm_ticks == 0
          ? 0
          : static_cast<double>(ins_.warm_iterations->Value()) / s.warm_ticks;
  s.cold_avg_iterations =
      s.cold_ticks == 0
          ? 0
          : static_cast<double>(ins_.cold_iterations->Value()) / s.cold_ticks;
  s.last_ingest_lag_days = ins_.ingest_lag_days->Value();
  return s;
}

bool ShardedStreamServer::Backoff(int attempt) {
  double ms = config_.resilience.retry_backoff_ms * std::ldexp(1.0, attempt);
  ms = std::min(ms, config_.resilience.max_retry_backoff_ms);
  const auto until =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(ms));
  while (std::chrono::steady_clock::now() < until) {
    if (stop_token_.load(std::memory_order_relaxed)) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return !stop_token_.load(std::memory_order_relaxed);
}

void ShardedStreamServer::DetectLoop() {
  for (;;) {
    RoutedBatch rb;
    {
      std::unique_lock<std::mutex> lk(mu_);
      queue_cv_.wait(lk, [&] {
        return stopping_ || !queue_.empty() || checkpoint_requested_ ||
               resize_requested_ != 0;
      });
      if (stopping_) return;
      if (queue_.empty() && resize_requested_ != 0) {
        // Live resize (public Resize): the queue is drained, so detection
        // state is quiescent — migrate outside the lock and hand the status
        // back to the blocked caller. Serviced before checkpoints so a
        // combined request snapshots the new shape.
        const int target = resize_requested_;
        lk.unlock();
        const Status st = MigrateToShardCount(target);
        lk.lock();
        resize_requested_ = 0;
        resize_status_ = st;
        resize_done_cv_.notify_all();
        continue;
      }
      if (queue_.empty()) {
        // On-demand checkpoint (public WriteCheckpoint): queue drained, so
        // the coordinator-thread state is quiescent; write outside the lock
        // and hand the status back to the blocked caller.
        lk.unlock();
        const Status st = DoWriteCheckpoint();
        lk.lock();
        checkpoint_requested_ = false;
        checkpoint_status_ = st;
        checkpoint_done_cv_.notify_all();
        continue;
      }
      rb = std::move(queue_.front());
      queue_.pop_front();
      ins_.queue_depth->Set(static_cast<double>(queue_.size()));
      busy_ = true;
      not_full_cv_.notify_all();
    }
    // The highest WAL sequence the window now contains — what the next
    // checkpoint records as its replay floor.
    if (rb.wal_seq > consumed_wal_seq_) consumed_wal_seq_ = rb.wal_seq;
    NoteBatchDequeued(rb, obs::MonotonicSeconds());
    bool keep_running = true;
    // One serve.window_append evaluation covers the whole routed batch, so
    // an injected fault leaves either every shard window or none of them
    // appended — the batch stays in hand for an exact retry.
    obs::ScopedSpan append_span(
        config_.trace.collect_spans() ? &span_sink_ : nullptr, rb.ctx.trace,
        "serve.window_append");
    append_span.AddLabel("edges", std::to_string(rb.global_edges));
    Status append_status;
    for (int attempt = 0;; ++attempt) {
      append_status = fail::Inject("serve.window_append");
      if (append_status.ok()) {
        pool()->ParallelFor(
            0, static_cast<int64_t>(rb.parts.size()),
            [&](int64_t lo, int64_t hi) {
              for (int64_t k = lo; k < hi; ++k) {
                if (!rb.parts[k].empty()) {
                  windows_[k].Append(std::move(rb.parts[k]));
                }
              }
            },
            1);
        global_edges_ += rb.global_edges;
        break;
      }
      if (!IsTransient(append_status) ||
          attempt >= config_.resilience.max_tick_retries) {
        break;
      }
      ins_.tick_retries->Increment();
      if (!Backoff(attempt)) {
        append_status = Status::Cancelled("server stopping");
        break;
      }
    }
    append_span.End();
    if (!append_status.ok()) {
      if (append_status.IsCancelled()) {
        // Shutting down; the loop exits via stopping_ above.
      } else if (IsTransient(append_status)) {
        ins_.batches_dropped->Increment();
        RecordError(append_status);
        GLP_LOG(Warning) << "dropping batch after append failures: "
                         << append_status.ToString();
      } else {
        RecordError(append_status);
        GLP_LOG(Error) << "fatal window-append fault: "
                       << append_status.ToString();
        keep_running = false;
      }
    } else {
      keep_running = RunDueTicks();
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      busy_ = false;
      if (!keep_running) {
        dead_ = true;
        not_full_cv_.notify_all();
        drained_cv_.notify_all();
        checkpoint_done_cv_.notify_all();
        resize_done_cv_.notify_all();
        return;
      }
      if (queue_.empty()) drained_cv_.notify_all();
    }
  }
}

bool ShardedStreamServer::RunDueTicks() {
  if (global_edges_ == 0) return true;
  // The fleet ticks on one global grid: boundaries derive from the global
  // min/max timestamp across shards, so the schedule is identical to the
  // 1-shard server's over the same stream.
  double min_time = std::numeric_limits<double>::infinity();
  double max_time = -std::numeric_limits<double>::infinity();
  for (const graph::SlidingWindow& w : windows_) {
    if (w.num_stream_edges() == 0) continue;
    min_time = std::min(min_time, w.min_time());
    max_time = std::max(max_time, w.max_time());
  }
  const double cadence = config_.tick.every_days;
  if (!tick_schedule_primed_) {
    next_tick_end_ = cadence * (std::floor(min_time / cadence) + 1.0);
    tick_schedule_primed_ = true;
  }
  while (max_time >= next_tick_end_) {
    if (stop_token_.load(std::memory_order_relaxed)) return true;
    if (config_.resilience.tick_deadline_seconds > 0 &&
        last_tick_wall_seconds_ > config_.resilience.tick_deadline_seconds) {
      const auto overdue = static_cast<int64_t>(
          std::floor((max_time - next_tick_end_) / cadence));
      if (overdue > 0) {
        ins_.ticks_shed->Increment(static_cast<uint64_t>(overdue));
        next_tick_end_ += static_cast<double>(overdue) * cadence;
      }
    }
    const TickOutcome outcome = RunTick(next_tick_end_);
    if (outcome == TickOutcome::kFatal) return false;
    if (outcome == TickOutcome::kCancelled) return true;
    next_tick_end_ += cadence;
    if (outcome == TickOutcome::kOk && !config_.checkpoint.dir.empty() &&
        config_.checkpoint.every_ticks > 0 &&
        num_ticks_ % config_.checkpoint.every_ticks == 0 &&
        num_ticks_ > last_checkpoint_tick_) {
      (void)DoWriteCheckpoint();
    }
    if (outcome == TickOutcome::kOk) MaybeAutoReshard();
  }
  return true;
}

Status ShardedStreamServer::WriteCheckpoint() {
  if (config_.checkpoint.dir.empty()) {
    return Status::InvalidArgument("no checkpoint dir configured");
  }
  std::unique_lock<std::mutex> lk(mu_);
  if (!started_) {
    lk.unlock();
    return DoWriteCheckpoint();
  }
  if (stopping_) return Status::Cancelled("server stopping");
  if (dead_) {
    return last_error_.ok() ? Status::Cancelled("server dead") : last_error_;
  }
  checkpoint_requested_ = true;
  queue_cv_.notify_one();
  checkpoint_done_cv_.wait(lk, [&] {
    return !checkpoint_requested_ || stopping_ || dead_;
  });
  if (checkpoint_requested_) {
    checkpoint_requested_ = false;
    return Status::Cancelled("server stopped before checkpoint");
  }
  return checkpoint_status_;
}

Status ShardedStreamServer::DoWriteCheckpoint() {
  const int64_t tick = num_ticks_;
  ShardManifest m;
  m.tick = tick;
  m.num_shards = num_shards();
  m.epoch = wal_ != nullptr ? wal_->epoch() : 0;
  // Manifest v3 carries the routing map the shard files were cut under, so
  // a restore reproduces ownership exactly even after live resharding.
  m.map_version = pmap_->version();
  m.map_override_keys = pmap_->override_keys();
  m.map_override_parts = pmap_->override_parts();
  Status st = Status::OK();
  // Shard files first (each carries the serve.checkpoint failpoint through
  // SaveCheckpoint), coordinator next, manifest last: the manifest rename
  // is the commit point of the fleet snapshot.
  for (int k = 0; k < num_shards() && st.ok(); ++k) {
    CheckpointData sd;
    sd.tick = tick;
    sd.edges = windows_[k].edges();
    const std::string name = ShardCheckpointFileName(k, tick);
    st = SaveCheckpoint(config_.checkpoint.dir + "/" + name, sd);
    if (st.ok()) m.shard_files.push_back(name);
  }
  if (st.ok()) {
    CheckpointData cd;
    cd.tick = tick;
    cd.tick_schedule_primed = tick_schedule_primed_;
    cd.next_tick_end = next_tick_end_;
    {
      std::lock_guard<std::mutex> lk(mu_);
      cd.ingested_max_time = ingested_max_time_;
    }
    cd.have_prev = have_prev_ && !warm_anchor_.empty();
    if (cd.have_prev) {
      // The warm-anchor map serialized as parallel arrays, entity-sorted so
      // identical state writes identical bytes.
      cd.prev_l2g.reserve(warm_anchor_.size());
      for (const auto& [entity, anchor] : warm_anchor_) {
        cd.prev_l2g.push_back(entity);
      }
      std::sort(cd.prev_l2g.begin(), cd.prev_l2g.end());
      cd.prev_labels.reserve(cd.prev_l2g.size());
      for (VertexId entity : cd.prev_l2g) {
        cd.prev_labels.push_back(warm_anchor_.at(entity));
      }
    }
    cd.prev_confirmed.assign(prev_confirmed_.begin(), prev_confirmed_.end());
    // The coordinator file records the WAL replay floor: every batch at or
    // below consumed_wal_seq_ is already inside the shard windows above.
    cd.wal_seq = consumed_wal_seq_;
    cd.wal_epoch = wal_ != nullptr ? wal_->epoch() : 0;
    if (config_.tick.incremental && inc_reuse_ok_) {
      // Anchors for every in-window entity, ascending (deterministic
      // bytes). The fleet union-find is rebuilt from the shard windows on
      // restore, same as the single-server tracker.
      cd.has_incremental = true;
      for (size_t e = 0; e < universe_; ++e) {
        if (!inc_tracker_.InWindow(static_cast<VertexId>(e))) continue;
        cd.inc_entities.push_back(static_cast<VertexId>(e));
        cd.inc_anchors.push_back(e < anchor_of_.size()
                                     ? anchor_of_[e]
                                     : graph::kInvalidVertex);
      }
    }
    m.coord_file = CoordCheckpointFileName(tick);
    st = SaveCheckpoint(config_.checkpoint.dir + "/" + m.coord_file, cd);
  }
  if (st.ok()) {
    st = SaveShardManifest(
        config_.checkpoint.dir + "/" + ShardManifestFileName(tick), m);
  }
  if (st.ok()) {
    ins_.checkpoints_ok->Increment();
    last_checkpoint_tick_ = tick;
    (void)PruneShardCheckpoints(config_.checkpoint.dir,
                                config_.checkpoint.keep,
                                config_.durability.dir);
    if (wal_ != nullptr) {
      // Segments fully covered by this snapshot are dead weight now.
      (void)wal_->PruneThrough(consumed_wal_seq_);
      PublishWalStats();
    }
  } else {
    ins_.checkpoints_failed->Increment();
    GLP_LOG(Warning) << "sharded checkpoint at tick " << tick
                     << " failed: " << st.ToString();
  }
  return st;
}

Status ShardedStreamServer::Resize(int new_num_shards) {
  if (new_num_shards < 1 || new_num_shards > 256) {
    return Status::InvalidArgument("num_shards out of range [1, 256]: " +
                                   std::to_string(new_num_shards));
  }
  std::unique_lock<std::mutex> lk(mu_);
  if (!started_) {
    // Offline resize (before Start, typically right after a restore): the
    // caller owns the server, migrate inline.
    lk.unlock();
    return MigrateToShardCount(new_num_shards);
  }
  if (stopping_) return Status::Cancelled("server stopping");
  if (dead_) {
    return last_error_.ok() ? Status::Cancelled("server dead") : last_error_;
  }
  // Same handshake as WriteCheckpoint: hand the migration to the detection
  // thread (it runs once the queue drains — the quiesce point) and block
  // until it commits or aborts.
  resize_requested_ = new_num_shards;
  queue_cv_.notify_one();
  resize_done_cv_.wait(lk, [&] {
    return resize_requested_ == 0 || stopping_ || dead_;
  });
  if (resize_requested_ != 0) {
    resize_requested_ = 0;
    return Status::Cancelled("server stopped before resize");
  }
  return resize_status_;
}

Status ShardedStreamServer::MigrateToShardCount(int target) {
  const int old_n = num_shards();
  if (target == old_n) return Status::OK();
  const double t0 = obs::MonotonicSeconds();
  // Abort point — BEFORE any state is touched, so an injected fault (or a
  // real failure in the build phase below) leaves the old shape fully
  // intact and a retry is always safe.
  {
    const Status inj = fail::Inject("serve.reshard");
    if (!inj.ok()) {
      ins_.reshards_aborted->Increment();
      GLP_LOG(Warning) << "resize " << old_n << " -> " << target
                       << " shards aborted: " << inj.ToString();
      return inj;
    }
  }
  auto new_map = std::make_shared<const pipeline::PartitionMap>(
      pmap_->Repartitioned(target));
  // Build the target shape off to the side: reconstruct the global
  // canonical stream from each shard's owned copies (mirrors skipped, so
  // every stream edge appears exactly once), then route it under the new
  // map — exactly the windows an uninterrupted run on `target` shards
  // would hold.
  std::vector<TimedEdge> global;
  global.reserve(global_edges_);
  for (int k = 0; k < old_n; ++k) {
    for (const TimedEdge& e : windows_[k].edges()) {
      if (pmap_->PartOf(e.src) == k) global.push_back(e);
    }
  }
  std::sort(global.begin(), global.end(), graph::CanonicalEdgeLess);
  RoutedBatch routed = RouteBatch(global, *new_map);
  std::vector<graph::SlidingWindow> new_windows(static_cast<size_t>(target));
  for (int k = 0; k < target; ++k) {
    new_windows[k] = graph::SlidingWindow(std::move(routed.parts[k]));
  }
  // Commit: swap the map, count, and windows under mu_, and re-route any
  // batch still queued under the old map (the offline path — WAL-replay
  // batches queued by restore; the live path only migrates on an empty
  // queue). Each queued batch's global edge set is recovered by the same
  // owned-copy filter, so nothing is lost or duplicated across the swap.
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (RoutedBatch& q : queue_) {
      if (q.map_version == new_map->version()) continue;
      std::vector<TimedEdge> batch;
      batch.reserve(q.global_edges);
      const int qn = static_cast<int>(q.parts.size());
      for (int k = 0; k < qn; ++k) {
        for (const TimedEdge& e : q.parts[k]) {
          if (pmap_->PartOf(e.src) == k) batch.push_back(e);
        }
      }
      std::sort(batch.begin(), batch.end(), graph::CanonicalEdgeLess);
      RoutedBatch nq = RouteBatch(batch, *new_map);
      nq.ctx = std::move(q.ctx);
      nq.wal_seq = q.wal_seq;
      nq.enqueue_seconds = q.enqueue_seconds;
      q = std::move(nq);
    }
    pmap_ = new_map;
    num_shards_.store(target, std::memory_order_release);
    windows_ = std::move(new_windows);
    ins_.num_shards_gauge->Set(static_cast<double>(target));
  }
  // Rebuild the derived coordinator-side structures. range_cursors_ hold
  // pointers into windows_, which the swap above invalidated.
  shards_.clear();
  shards_.resize(static_cast<size_t>(target));
  for (ShardScratch& s : shards_) {
    s.owner_buckets.resize(static_cast<size_t>(target));
  }
  owners_.clear();
  owners_.resize(static_cast<size_t>(target));
  range_cursors_.clear();
  range_cursors_.reserve(static_cast<size_t>(target));
  for (int k = 0; k < target; ++k) {
    range_cursors_.emplace_back(&windows_[k]);
  }
  EnsureShardInstruments(target);
  // Cluster records are owner-bucketed; re-extracting them next tick is
  // cheap and yields identical clusters (the reuse invariant), so drop the
  // cache rather than re-derive its bucketing.
  records_valid_ = false;
  records_.clear();
  if (config_.tick.incremental && inc_reuse_ok_ && tick_schedule_primed_) {
    // Re-prime every cursor at the last completed tick and rebuild the
    // fleet union-find from the new windows (clean: anchors carry over —
    // warm anchors and anchor_of_ are global-id state, untouched by the
    // re-partition), so the next tick still takes the exact delta path.
    const double last_end = next_tick_end_ - config_.tick.every_days;
    const double last_start = last_end - config_.detect.window_days;
    universe_ = 0;
    for (const graph::SlidingWindow& w : windows_) {
      if (w.num_stream_edges() == 0) continue;
      universe_ =
          std::max(universe_, static_cast<size_t>(w.max_entity()) + 1);
    }
    for (int k = 0; k < target; ++k) {
      range_cursors_[k].PrimeAt(last_start, last_end);
      shards_[k].lo = range_cursors_[k].lo();
      shards_[k].hi = range_cursors_[k].hi();
    }
    inc_tracker_.BeginRebuild();
    for (int k = 0; k < target; ++k) {
      inc_tracker_.AddWindowRange(windows_[k].edges(), shards_[k].lo,
                                  shards_[k].hi);
    }
    inc_tracker_.FinishRebuild(/*mark_all_dirty=*/false);
    RefreshOwnersFromTracker();
  }
  last_reshard_tick_ = num_ticks_;
  // Durable commit: a snapshot of the new shape, so a crash after the
  // resize restores straight into it (best effort — the in-memory commit
  // above already happened, and a checkpoint failure is recoverable by the
  // shape-portable restore path anyway).
  if (!config_.checkpoint.dir.empty()) (void)DoWriteCheckpoint();
  const double pause = obs::MonotonicSeconds() - t0;
  ins_.reshards_ok->Increment();
  ins_.reshard_pause_seconds->Observe(pause);
  GLP_LOG(Info) << "resharded fleet: " << old_n << " -> " << target
                << " shards (" << global.size()
                << " stream edges re-routed in " << pause << "s)";
  return Status::OK();
}

void ShardedStreamServer::MaybeAutoReshard() {
  const ReshardPolicy& p = config_.reshard;
  if (!p.enabled()) return;
  if (num_ticks_ - last_reshard_tick_ < p.cooldown_ticks) return;
  // Heat = in-window edges per shard at the tick that just completed
  // (mirrors included — they are real per-shard work). Deterministic in
  // the stream, so replays make identical decisions.
  uint64_t total = 0;
  for (int k = 0; k < num_shards(); ++k) {
    total += static_cast<uint64_t>(shards_[k].hi - shards_[k].lo);
  }
  const uint64_t per = total / static_cast<uint64_t>(num_shards());
  int target = num_shards();
  if (p.grow_edges_per_shard > 0 && per > p.grow_edges_per_shard &&
      num_shards() < p.max_shards) {
    target = num_shards() + 1;
  } else if (p.shrink_edges_per_shard > 0 && per < p.shrink_edges_per_shard &&
             num_shards() > p.min_shards) {
    target = num_shards() - 1;
  }
  if (target == num_shards()) return;
  GLP_LOG(Info) << "auto-reshard: " << per << " in-window edges/shard -> "
                << target << " shards";
  const Status st = MigrateToShardCount(target);
  if (!st.ok()) {
    GLP_LOG(Warning) << "auto-reshard to " << target
                     << " shards failed: " << st.ToString();
  }
}

void ShardedStreamServer::ShardComponents(int k, double start_time,
                                          double end_time) {
  ShardScratch& s = shards_[k];
  s.entities.clear();
  s.uf.clear();
  const graph::SlidingWindow& w = windows_[k];
  if (w.num_stream_edges() == 0) {
    s.lo = s.hi = 0;
    return;
  }
  s.lo = w.LowerBound(start_time);
  s.hi = w.LowerBound(end_time);
  s.intern.EnsureUniverse(universe_);
  s.intern.Bump();
  const std::vector<TimedEdge>& edges = w.edges();
  auto add = [&](VertexId g) {
    const VertexId l = s.intern.Intern(g, &s.entities);
    if (static_cast<size_t>(l) == s.uf.size()) s.uf.push_back(l);
    return l;
  };
  for (size_t i = s.lo; i < s.hi; ++i) {
    const VertexId a = add(edges[i].src);
    const VertexId b = add(edges[i].dst);
    const VertexId ra = Find(&s.uf, a);
    const VertexId rb = Find(&s.uf, b);
    if (ra != rb) s.uf[rb] = ra;
  }
}

void ShardedStreamServer::StitchComponents() {
  // Mirroring guarantees every cross-shard edge appears in both endpoint
  // shards, so unioning each active entity with its shard-local component
  // root — over all shards — yields exactly the global components: any
  // global path is a chain of intra-shard hops stitched at shared entities.
  stitch_intern_.EnsureUniverse(universe_);
  stitch_intern_.Bump();
  stitch_entities_.clear();
  stitch_uf_.clear();
  auto add = [&](VertexId g) {
    const VertexId l = stitch_intern_.Intern(g, &stitch_entities_);
    if (static_cast<size_t>(l) == stitch_uf_.size()) stitch_uf_.push_back(l);
    return l;
  };
  for (ShardScratch& s : shards_) {
    for (size_t i = 0; i < s.entities.size(); ++i) {
      const VertexId root_entity =
          s.entities[Find(&s.uf, static_cast<VertexId>(i))];
      const VertexId a = add(s.entities[i]);
      const VertexId b = add(root_entity);
      const VertexId ra = Find(&stitch_uf_, a);
      const VertexId rb = Find(&stitch_uf_, b);
      if (ra != rb) stitch_uf_[rb] = ra;
    }
  }
  // Deterministic owner: the shard of the component's smallest entity id —
  // stable under any shard/batch interleaving of the same window.
  comp_min_entity_.assign(stitch_entities_.size(), graph::kInvalidVertex);
  for (size_t l = 0; l < stitch_entities_.size(); ++l) {
    const VertexId r = Find(&stitch_uf_, static_cast<VertexId>(l));
    comp_min_entity_[r] = std::min(comp_min_entity_[r], stitch_entities_[l]);
  }
  for (OwnerWork& ow : owners_) ow.num_components = 0;
  if (owner_of_.size() < universe_) owner_of_.resize(universe_);
  for (size_t l = 0; l < stitch_entities_.size(); ++l) {
    const VertexId r = Find(&stitch_uf_, static_cast<VertexId>(l));
    const int owner = pmap_->PartOf(comp_min_entity_[r]);
    owner_of_[stitch_entities_[l]] = static_cast<uint8_t>(owner);
    if (static_cast<VertexId>(l) == r) ++owners_[owner].num_components;
  }
}

void ShardedStreamServer::BucketShardEdges(int k) {
  ShardScratch& s = shards_[k];
  for (auto& bucket : s.owner_buckets) bucket.clear();
  const std::vector<TimedEdge>& edges = windows_[k].edges();
  for (size_t i = s.lo; i < s.hi; ++i) {
    const TimedEdge& e = edges[i];
    // Owned copies only: the mirror of this edge in the other endpoint's
    // shard is skipped there, so the buckets partition the global window.
    if (pmap_->PartOf(e.src) != k) continue;
    s.owner_buckets[owner_of_[e.src]].push_back(e);
  }
}

void ShardedStreamServer::RefreshOwnersFromTracker() {
  // Full recompute (rebuild/restore paths only — O(universe)): owner =
  // pmap_->PartOf(component min entity), the same rule StitchComponents
  // applies, so cold and incremental replays bucket identically. The
  // ascending entity scan means a root's first-seen member IS its minimum.
  if (owner_of_.size() < universe_) owner_of_.resize(universe_);
  comp_min_scratch_.assign(universe_, graph::kInvalidVertex);
  std::vector<int64_t> counts(static_cast<size_t>(num_shards()), 0);
  for (size_t e = 0; e < universe_; ++e) {
    if (!inc_tracker_.InWindow(static_cast<VertexId>(e))) continue;
    const VertexId r = inc_tracker_.Root(static_cast<VertexId>(e));
    if (comp_min_scratch_[r] == graph::kInvalidVertex) {
      comp_min_scratch_[r] = static_cast<VertexId>(e);
      ++counts[pmap_->PartOf(static_cast<VertexId>(e))];
    }
  }
  for (size_t e = 0; e < universe_; ++e) {
    if (!inc_tracker_.InWindow(static_cast<VertexId>(e))) continue;
    const VertexId r = inc_tracker_.Root(static_cast<VertexId>(e));
    owner_of_[e] = static_cast<uint8_t>(pmap_->PartOf(comp_min_scratch_[r]));
  }
  for (int o = 0; o < num_shards_; ++o) owners_[o].num_components = counts[o];
}

bool ShardedStreamServer::UpdateIncrementalTracker(double start_time,
                                                   double end_time) {
  // Advance every shard's range cursor. The delta path needs ALL shards
  // exact: a single rewritten shard prefix poisons that shard's indices,
  // and a component can span shards — conservative fleet-wide rebuild,
  // never wrong.
  std::vector<graph::WindowDelta> deltas(num_shards_);
  bool all_exact = true;
  for (int k = 0; k < num_shards_; ++k) {
    range_cursors_[k].AdvanceTo(start_time, end_time, &deltas[k]);
    shards_[k].lo = range_cursors_[k].lo();
    shards_[k].hi = range_cursors_[k].hi();
    all_exact = all_exact && deltas[k].exact;
  }
  const bool force_rebuild = !fail::Inject("serve.incremental_rebuild").ok();
  bool applied = false;
  if (all_exact && !force_rebuild) {
    // Phased application: every shard's expirations land before any
    // retained-edge rescan, so a component spanning shards re-derives from
    // the union of all its shards' retained edges.
    inc_tracker_.BeginTick();
    for (int k = 0; k < num_shards_; ++k) {
      inc_tracker_.Expire(windows_[k].edges(), deltas[k]);
    }
    for (int k = 0; k < num_shards_; ++k) {
      inc_tracker_.Rescan(windows_[k].edges(), deltas[k]);
    }
    for (int k = 0; k < num_shards_; ++k) {
      inc_tracker_.Append(windows_[k].edges(), deltas[k]);
    }
    inc_tracker_.FinishTick();
    applied = true;
    // Re-own dirty components only; a clean component's min member — the
    // entity that fixed its owner — is unchanged by definition. (The
    // components_owned gauges refresh on rebuild ticks.)
    if (owner_of_.size() < universe_) owner_of_.resize(universe_);
    for (const VertexId r : inc_tracker_.dirty_roots()) {
      const std::vector<VertexId>& mem = inc_tracker_.MembersOf(r);
      VertexId mn = mem.front();
      for (const VertexId m : mem) mn = std::min(mn, m);
      const auto owner = static_cast<uint8_t>(pmap_->PartOf(mn));
      for (const VertexId m : mem) owner_of_[m] = owner;
    }
  } else {
    inc_tracker_.BeginRebuild();
    for (int k = 0; k < num_shards_; ++k) {
      inc_tracker_.AddWindowRange(windows_[k].edges(), shards_[k].lo,
                                  shards_[k].hi);
    }
    inc_tracker_.FinishRebuild(/*mark_all_dirty=*/true);
    ins_.incremental_rebuilds->Increment();
    RefreshOwnersFromTracker();
  }
  ins_.dirty_components->Set(
      static_cast<double>(inc_tracker_.NumDirtyComponents()));
  return applied;
}

void ShardedStreamServer::RunOwnerDetection(int o, double window_start,
                                            double window_end, bool degraded,
                                            bool warm_wanted, bool use_delta) {
  OwnerWork& ow = owners_[o];
  ow.ran = false;
  ow.warm = false;
  ow.status = Status::OK();
  ow.outcome = TickOutcome::kOk;
  ow.wall_seconds = 0;
  ow.reused = 0;
  // Each shard's bucket is a canonically-ordered subsequence of its window;
  // an N-way merge restores the owner's edges to exactly the order the
  // 1-shard window would iterate them in — the invariant the snapshot's
  // local-id assignment (and through it every LP tie-break) depends on.
  ow.edges.clear();
  for (int k = 0; k < num_shards_; ++k) {
    const std::vector<TimedEdge>& bucket = shards_[k].owner_buckets[o];
    if (bucket.empty()) continue;
    if (ow.edges.empty()) {
      ow.edges = bucket;
      continue;
    }
    ow.merge_tmp.clear();
    ow.merge_tmp.reserve(ow.edges.size() + bucket.size());
    std::merge(ow.edges.begin(), ow.edges.end(), bucket.begin(), bucket.end(),
               std::back_inserter(ow.merge_tmp), graph::CanonicalEdgeLess);
    std::swap(ow.edges, ow.merge_tmp);
  }
  if (ow.edges.empty()) return;  // this shard owns no components this tick
  glp::Timer owner_timer;
  // Pool workers append spans concurrently (SpanSink is mutex-guarded);
  // tick_trace_/tick_root_span_ were fixed by the coordinator before the
  // fan-out and are read-only here.
  const bool collect = config_.trace.collect_spans();
  const obs::SpanContext tick_ctx{tick_trace_.trace_id, tick_root_span_,
                                  tick_trace_.sampled};
  obs::ScopedSpan owner_span(collect ? &span_sink_ : nullptr, tick_ctx,
                             "serve.owner_detect");
  owner_span.AddLabel("shard", std::to_string(o));
  owner_span.AddLabel("edges", std::to_string(ow.edges.size()));

  // Snapshot build, mirroring SlidingWindow::SnapshotRange on the merged
  // edge list (dense epoch-stamped remap, first-appearance local ids).
  graph::SlidingWindow::Scratch& sc = ow.scratch;
  if (sc.epoch_of.size() < universe_) {
    sc.epoch_of.assign(universe_, 0);
    sc.local_of.resize(universe_);
    sc.epoch = 0;
  }
  if (++sc.epoch == 0) {
    std::fill(sc.epoch_of.begin(), sc.epoch_of.end(), 0u);
    sc.epoch = 1;
  }
  const uint32_t epoch = sc.epoch;
  ow.snap.local_to_global.clear();
  auto intern = [&](VertexId g) {
    if (sc.epoch_of[g] != epoch) {
      sc.epoch_of[g] = epoch;
      sc.local_of[g] = static_cast<VertexId>(ow.snap.local_to_global.size());
      ow.snap.local_to_global.push_back(g);
    }
    return sc.local_of[g];
  };
  std::vector<graph::Edge> local;
  local.reserve(ow.edges.size());
  for (const TimedEdge& e : ow.edges) {
    local.push_back({intern(e.src), intern(e.dst)});
  }
  graph::GraphBuilder builder(
      static_cast<VertexId>(ow.snap.local_to_global.size()));
  builder.Reserve(local.size());
  for (const graph::Edge& e : local) builder.AddEdgeUnchecked(e.src, e.dst);
  ow.snap.graph = config_.detect.collapse_window_graphs
                      ? builder.BuildCollapsed(/*symmetrize=*/true)
                      : builder.Build(/*symmetrize=*/true, /*dedupe=*/false);

  // Warm init from the global anchor map: an entity resumes its previous
  // label re-expressed as the anchor entity's local id, when the anchor
  // landed in this owner's snapshot too; everything else starts singleton.
  std::vector<Label> warm_init;
  if (warm_wanted) {
    warm_init.resize(ow.snap.local_to_global.size());
    for (size_t v = 0; v < ow.snap.local_to_global.size(); ++v) {
      Label out = static_cast<Label>(v);
      const auto it = warm_anchor_.find(ow.snap.local_to_global[v]);
      if (it != warm_anchor_.end() && sc.epoch_of[it->second] == epoch) {
        out = static_cast<Label>(sc.local_of[it->second]);
      }
      warm_init[v] = out;
    }
  }

  // Incremental delta for this owner, from the coordinator's pre-exported
  // dirty flags (entity_dirty_, anchor_of_, records_, owner_records_ are
  // all read-only during the parallel fan-out). Any inconsistency in the
  // carried-over state downgrades just this owner to the full — still
  // canonical — path.
  pipeline::DetectDelta dd;
  bool delta_ok = use_delta;
  if (delta_ok) {
    dd.extract_all = !records_valid_;
    const size_t n = ow.snap.local_to_global.size();
    dd.dirty.resize(n);
    dd.clean_labels.assign(n, 0);
    for (size_t v = 0; v < n; ++v) {
      const VertexId g = ow.snap.local_to_global[v];
      const bool dirty = entity_dirty_[g] != 0;
      dd.dirty[v] = dirty ? 1 : 0;
      if (dirty) {
        dd.clean_labels[v] = static_cast<Label>(v);  // defined but unread
        continue;
      }
      const VertexId anchor = static_cast<size_t>(g) < anchor_of_.size()
                                  ? anchor_of_[g]
                                  : graph::kInvalidVertex;
      if (anchor == graph::kInvalidVertex ||
          static_cast<size_t>(anchor) >= universe_ ||
          sc.epoch_of[anchor] != epoch) {
        delta_ok = false;
        break;
      }
      dd.clean_labels[v] = static_cast<Label>(sc.local_of[anchor]);
    }
    if (delta_ok && !dd.extract_all) {
      for (const size_t idx : owner_records_[o]) {
        const ClusterRecord& rec = records_[idx];
        if (static_cast<size_t>(rec.label_anchor) >= universe_ ||
            sc.epoch_of[rec.label_anchor] != epoch) {
          delta_ok = false;
          break;
        }
        pipeline::SuspiciousCluster c = rec.cluster;
        c.label = static_cast<Label>(sc.local_of[rec.label_anchor]);
        dd.reused.push_back(std::move(c));
      }
    }
  }

  // The same retry ladder as StreamServer::RunTick, walked independently
  // per owner shard: transient faults retry, attempt 2 drops warm start,
  // the final attempt runs the fallback engine.
  const int max_attempts = 1 + std::max(0, config_.resilience.max_tick_retries);
  Status failure;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    pipeline::PipelineConfig cfg = config_.detect;
    if (degraded) {
      cfg.lp.max_iterations =
          std::min(cfg.lp.max_iterations, config_.resilience.degraded_iteration_cap);
      cfg.lp.stop_when_stable = true;
    }
    const bool warm = warm_wanted && attempt <= 1;
    if (warm_wanted && !warm) ins_.warm_fallbacks->Increment();
    if (warm) cfg.lp.initial_labels = warm_init;
    // Delta attempts track the warm-start retry shape; later attempts run
    // the full (still canonical) detection.
    const bool with_delta = delta_ok && attempt <= 1;
    if (attempt == max_attempts - 1 && attempt > 0 &&
        config_.resilience.enable_engine_fallback) {
      cfg.engine = config_.resilience.fallback_engine;
      ins_.engine_fallbacks->Increment();
    }

    lp::RunContext ctx;
    ctx.profiler = nullptr;  // per-phase profiling is not per-owner safe
    ctx.pool = config_.pool;
    ctx.stop_token = &stop_token_;
    ctx.metrics = registry_;
    ctx.trace_sink = collect ? &span_sink_ : nullptr;
    ctx.trace_id = tick_trace_.trace_id;
    ctx.trace_parent_span =
        owner_span.active() ? owner_span.context().span_id : 0;

    Status st = fail::Inject("serve.tick");
    if (st.ok()) {
      auto result = pipeline::DetectOnSnapshot(
          ow.snap, cfg, ctx, config_.seeds, config_.ground_truth,
          window_start, window_end, with_delta ? &dd : nullptr);
      if (result.ok()) {
        ow.result = std::move(result).value();
        ow.warm = warm;
        ow.ran = true;
        if (with_delta && !dd.extract_all) {
          ow.reused = static_cast<int64_t>(dd.reused.size());
        }
        break;
      }
      st = result.status();
    }
    if (st.IsCancelled()) {
      ow.outcome = TickOutcome::kCancelled;
      return;
    }
    if (!IsTransient(st)) {
      ow.status = st;
      ow.outcome = TickOutcome::kFatal;
      return;
    }
    failure = st;
    if (attempt + 1 < max_attempts) {
      ins_.tick_retries->Increment();
      if (!Backoff(attempt)) {
        ow.outcome = TickOutcome::kCancelled;
        return;
      }
    }
  }
  if (!ow.ran) {
    ow.status = failure;
    ow.outcome = TickOutcome::kAbandoned;
    owner_span.AddLabel("error", failure.ToString());
    return;
  }
  ow.wall_seconds = owner_timer.Seconds();
  owner_span.AddLabel("warm", ow.warm ? "1" : "0");
}

ShardedStreamServer::TickOutcome ShardedStreamServer::RunTick(
    double end_time) {
  glp::Timer tick_timer;
  const double tick_start_mono = obs::MonotonicSeconds();
  const double host_start =
      config_.profiler != nullptr ? config_.profiler->HostNow() : 0;

  TickResult tr;
  tr.tick = num_ticks_;
  tr.window_end = end_time;
  tr.window_start = end_time - config_.detect.window_days;

  // Mint this tick's trace (head-based sampling) and its root span id; the
  // root serve.tick span itself is assembled in FinishTickTrace once the
  // wall time is known. Sampled ticks stamp trace=<id> on every GLP_LOG
  // line the coordinator emits during the tick.
  const bool collect = config_.trace.collect_spans();
  if (config_.trace.enabled()) {
    tick_trace_ = sampler_.StartTrace();
  } else {
    tick_trace_ = obs::SpanContext{};
  }
  tick_root_span_ = collect ? span_sink_.NewSpanId() : 0;
  const obs::SpanContext root_ctx{tick_trace_.trace_id, tick_root_span_,
                                  tick_trace_.sampled};
  struct LogTraceScope {
    uint64_t prev = glp::GetLogTraceId();
    ~LogTraceScope() { glp::SetLogTraceId(prev); }
  } log_trace_scope;
  if (tick_trace_.sampled) glp::SetLogTraceId(tick_trace_.trace_id);

  // Degradation ladder steps 1–2, fleet-wide (identical to StreamServer;
  // incremental mode has no warm/refresh machinery — every tick is exact).
  const bool degraded =
      config_.resilience.tick_deadline_seconds > 0 &&
      last_tick_wall_seconds_ > config_.resilience.tick_deadline_seconds;
  bool refresh_due = !config_.tick.incremental &&
                     config_.tick.cold_refresh_every_ticks > 0 &&
                     num_ticks_ % config_.tick.cold_refresh_every_ticks == 0;
  if (!config_.tick.incremental && config_.tick.warm_start && have_prev_) {
    if (degraded && (refresh_due || refresh_pending_)) {
      if (refresh_due) ins_.cold_refresh_deferred->Increment();
      refresh_pending_ = true;
      refresh_due = false;
    } else if (!degraded && refresh_pending_) {
      refresh_due = true;
      refresh_pending_ = false;
    }
  }
  if (degraded) ins_.degraded_ticks->Increment();

  glp::Timer build_timer;
  universe_ = 0;
  for (const graph::SlidingWindow& w : windows_) {
    if (w.num_stream_edges() == 0) continue;
    universe_ =
        std::max(universe_, static_cast<size_t>(w.max_entity()) + 1);
  }
  // Incremental mode replaces the per-shard union-finds AND the boundary
  // stitch with one persistent fleet-wide tracker; it must be updated even
  // when the windows went empty (the expirations that emptied them count).
  bool delta_applied = false;
  if (config_.tick.incremental) {
    obs::ScopedSpan uf_span(collect ? &span_sink_ : nullptr, root_ctx,
                            "serve.union_find");
    delta_applied = UpdateIncrementalTracker(tr.window_start, end_time);
    uf_span.AddLabel("mode", delta_applied ? "delta" : "rebuild");
  } else {
    obs::ScopedSpan comp_span(collect ? &span_sink_ : nullptr, root_ctx,
                              "serve.components");
    pool()->ParallelFor(
        0, num_shards_,
        [&](int64_t lo, int64_t hi) {
          for (int64_t k = lo; k < hi; ++k) {
            ShardComponents(static_cast<int>(k), tr.window_start, end_time);
          }
        },
        1);
  }
  bool any_active = false;
  for (const ShardScratch& s : shards_) any_active |= s.hi > s.lo;

  const bool warm_wanted = !config_.tick.incremental && config_.tick.warm_start &&
                           have_prev_ && !refresh_due && any_active;

  if (any_active) {
    if (!config_.tick.incremental) {
      obs::ScopedSpan stitch_span(collect ? &span_sink_ : nullptr, root_ctx,
                                  "serve.stitch");
      StitchComponents();
    }
    {
      obs::ScopedSpan bucket_span(collect ? &span_sink_ : nullptr, root_ctx,
                                  "serve.bucket_edges");
      pool()->ParallelFor(
          0, num_shards_,
          [&](int64_t lo, int64_t hi) {
            for (int64_t k = lo; k < hi; ++k) {
              BucketShardEdges(static_cast<int>(k));
            }
          },
          1);
    }
    const double build_seconds = build_timer.Seconds();

    // Snapshot the dirty flags and bucket reusable cluster records by
    // owner before fanning out, so the workers only ever read.
    const bool delta_ok =
        config_.tick.incremental && delta_applied && inc_reuse_ok_ && !degraded;
    if (delta_ok) {
      inc_tracker_.ExportDirty(universe_, &entity_dirty_);
      owner_records_.assign(num_shards_, {});
      if (records_valid_) {
        for (size_t idx = 0; idx < records_.size(); ++idx) {
          const std::vector<VertexId>& mem = records_[idx].cluster.members;
          if (mem.empty() || entity_dirty_[mem.front()] != 0) continue;
          owner_records_[owner_of_[mem.front()]].push_back(idx);
        }
      }
    }

    pool()->ParallelFor(
        0, num_shards_,
        [&](int64_t lo, int64_t hi) {
          for (int64_t o = lo; o < hi; ++o) {
            RunOwnerDetection(static_cast<int>(o), tr.window_start, end_time,
                              degraded, warm_wanted, delta_ok);
          }
        },
        1);

    // Worst outcome wins: a fatal owner kills the loop, a cancelled owner
    // means shutdown, any abandoned owner abandons the whole tick (partial
    // cluster sets must never publish — subscribers would see phantom
    // expirations for the missing owners' clusters).
    TickOutcome worst = TickOutcome::kOk;
    Status abandon_failure;
    for (const OwnerWork& ow : owners_) {
      if (ow.outcome == TickOutcome::kFatal) {
        RecordError(ow.status);
        GLP_LOG(Error) << "fatal detection fault at window end " << end_time
                       << ": " << ow.status.ToString();
        FinishTickTrace(tr.tick, end_time, "fatal", tick_start_mono,
                        tick_timer.Seconds(), /*dump=*/true);
        return TickOutcome::kFatal;
      }
      if (ow.outcome == TickOutcome::kCancelled) {
        worst = TickOutcome::kCancelled;
      } else if (ow.outcome == TickOutcome::kAbandoned &&
                 worst == TickOutcome::kOk) {
        worst = TickOutcome::kAbandoned;
        abandon_failure = ow.status;
      }
    }
    if (worst == TickOutcome::kCancelled) {
      FinishTickTrace(tr.tick, end_time, "cancelled", tick_start_mono,
                      tick_timer.Seconds(), /*dump=*/false);
      return TickOutcome::kCancelled;
    }
    if (worst == TickOutcome::kAbandoned) {
      RecordError(abandon_failure);
      ins_.ticks_failed->Increment();
      have_prev_ = false;
      warm_anchor_.clear();
      inc_reuse_ok_ = false;
      records_valid_ = false;
      records_.clear();
      GLP_LOG(Warning) << "tick at window end " << end_time
                       << " abandoned: " << abandon_failure.ToString();
      FinishTickTrace(tr.tick, end_time, "abandoned", tick_start_mono,
                      tick_timer.Seconds(), /*dump=*/true);
      return TickOutcome::kAbandoned;
    }

    // Stitch the per-owner results into one TickResult. Cluster labels are
    // renumbered densely in sorted-member order — deterministic and
    // shard-count independent. A tick counts as warm only when every owner
    // that ran kept its warm start (a mixed tick reports cold).
    tr.warm = warm_wanted;
    tr.detection.build_seconds = build_seconds;
    if (config_.tick.warm_start) warm_anchor_.clear();
    // Successful non-degraded incremental ticks refresh the carried-over
    // state from the published (canonical) per-owner output. Records must
    // capture owner-snapshot anchors BEFORE the stitched renumbering below.
    const bool refresh_inc = config_.tick.incremental && !degraded;
    std::vector<ClusterRecord> new_records;
    int64_t reused_total = 0;
    if (refresh_inc && anchor_of_.size() < universe_) {
      anchor_of_.resize(universe_, graph::kInvalidVertex);
    }
    for (int o = 0; o < num_shards_; ++o) {
      const OwnerWork& ow = owners_[o];
      shard_ins_[o].components_owned->Set(
          static_cast<double>(ow.num_components));
      shard_ins_[o].window_edges->Set(
          static_cast<double>(windows_[o].num_stream_edges()));
      shard_ins_[o].inwindow_edges->Set(
          static_cast<double>(shards_[o].hi - shards_[o].lo));
      if (!ow.ran) continue;
      tr.warm = tr.warm && ow.warm;
      shard_ins_[o].tick_seconds->Observe(ow.wall_seconds);
      tr.detection.window_vertices += ow.result.window_vertices;
      tr.detection.window_edges += ow.result.window_edges;
      for (const pipeline::SuspiciousCluster& c : ow.result.clusters) {
        tr.detection.clusters.push_back(c);
      }
      tr.detection.lp_metrics.true_positives +=
          ow.result.lp_metrics.true_positives;
      tr.detection.lp_metrics.false_positives +=
          ow.result.lp_metrics.false_positives;
      tr.detection.lp_metrics.false_negatives +=
          ow.result.lp_metrics.false_negatives;
      tr.detection.confirmed_metrics.true_positives +=
          ow.result.confirmed_metrics.true_positives;
      tr.detection.confirmed_metrics.false_positives +=
          ow.result.confirmed_metrics.false_positives;
      tr.detection.confirmed_metrics.false_negatives +=
          ow.result.confirmed_metrics.false_negatives;
      // Owners run concurrently: wall-clock aggregates take the max (the
      // critical path), iteration counts the max too (the grid steps the
      // slowest component needed). lp.labels stays empty — there is no
      // global local-id space to express per-vertex labels in.
      tr.detection.lp.iterations =
          std::max(tr.detection.lp.iterations, ow.result.lp.iterations);
      tr.detection.lp.simulated_seconds = std::max(
          tr.detection.lp.simulated_seconds, ow.result.lp.simulated_seconds);
      tr.detection.lp.wall_seconds =
          std::max(tr.detection.lp.wall_seconds, ow.result.lp.wall_seconds);
      tr.detection.lp_seconds =
          std::max(tr.detection.lp_seconds, ow.result.lp_seconds);
      tr.detection.lp_wall_seconds = std::max(tr.detection.lp_wall_seconds,
                                              ow.result.lp_wall_seconds);
      tr.detection.extract_seconds = std::max(tr.detection.extract_seconds,
                                              ow.result.extract_seconds);
      if (config_.tick.warm_start) {
        const std::vector<VertexId>& l2g = ow.snap.local_to_global;
        const std::vector<Label>& labels = ow.result.lp.labels;
        for (size_t v = 0; v < labels.size(); ++v) {
          if (labels[v] != graph::kInvalidLabel &&
              static_cast<size_t>(labels[v]) < l2g.size()) {
            warm_anchor_[l2g[v]] = l2g[labels[v]];
          }
        }
      }
      if (refresh_inc) {
        reused_total += ow.reused;
        const std::vector<VertexId>& l2g = ow.snap.local_to_global;
        const std::vector<Label>& labels = ow.result.lp.labels;
        for (size_t v = 0; v < labels.size(); ++v) {
          anchor_of_[l2g[v]] = static_cast<size_t>(labels[v]) < l2g.size()
                                   ? l2g[labels[v]]
                                   : graph::kInvalidVertex;
        }
        for (const pipeline::SuspiciousCluster& c : ow.result.clusters) {
          new_records.push_back({c, l2g[c.label]});
        }
      }
    }
    if (config_.tick.incremental) {
      if (refresh_inc) {
        if (reused_total > 0) {
          ins_.reused_clusters->Increment(
              static_cast<uint64_t>(reused_total));
        }
        records_ = std::move(new_records);
        inc_reuse_ok_ = true;
        records_valid_ = true;
      } else {
        inc_reuse_ok_ = false;
        records_valid_ = false;
        records_.clear();
      }
    }
    std::sort(tr.detection.clusters.begin(), tr.detection.clusters.end(),
              [](const pipeline::SuspiciousCluster& a,
                 const pipeline::SuspiciousCluster& b) {
                return a.members < b.members;
              });
    for (size_t i = 0; i < tr.detection.clusters.size(); ++i) {
      tr.detection.clusters[i].label = static_cast<Label>(i);
    }
    have_prev_ = true;
  } else {
    // Empty window: nothing to cluster; previously confirmed clusters all
    // expire below.
    have_prev_ = false;
    warm_anchor_.clear();
    inc_reuse_ok_ = false;
    records_valid_ = false;
    records_.clear();
  }

  {
    obs::ScopedSpan diff_span(collect ? &span_sink_ : nullptr, root_ctx,
                              "serve.diff_confirmed");
    std::set<std::vector<VertexId>> confirmed_now;
    for (const pipeline::SuspiciousCluster& c : tr.detection.clusters) {
      if (c.confirmed) confirmed_now.insert(c.members);
    }
    for (const auto& members : confirmed_now) {
      if (prev_confirmed_.count(members) == 0) {
        tr.new_confirmed.push_back(members);
      }
    }
    for (const auto& members : prev_confirmed_) {
      if (confirmed_now.count(members) == 0) {
        tr.expired_confirmed.push_back(members);
      }
    }
    prev_confirmed_ = std::move(confirmed_now);
    diff_span.AddLabel("new_confirmed",
                       std::to_string(tr.new_confirmed.size()));
  }

  tr.tick_wall_seconds = tick_timer.Seconds();
  last_tick_wall_seconds_ = tr.tick_wall_seconds;
  const bool overrun =
      config_.resilience.tick_deadline_seconds > 0 &&
      tr.tick_wall_seconds > config_.resilience.tick_deadline_seconds;
  if (overrun) ins_.deadline_overruns->Increment();
  {
    std::lock_guard<std::mutex> lk(mu_);
    tr.ingest_lag_days = ingested_max_time_ - end_time;
  }
  ins_.ingest_lag_days->Set(tr.ingest_lag_days);
  ins_.tick_seconds->ObserveWithExemplar(
      tr.tick_wall_seconds, tick_trace_.sampled ? tick_trace_.trace_id : 0);
  ObserveFreshness(tr);
  if (tr.warm) {
    ins_.warm_ticks->Increment();
    ins_.warm_iterations->Increment(
        static_cast<uint64_t>(tr.detection.lp.iterations));
  } else {
    ins_.cold_ticks->Increment();
    ins_.cold_iterations->Increment(
        static_cast<uint64_t>(tr.detection.lp.iterations));
  }
  if (config_.profiler != nullptr) {
    config_.profiler->RecordHostEvent(tr.warm ? "tick-warm" : "tick-cold",
                                      host_start, tr.tick_wall_seconds);
  }
  ++num_ticks_;
  {
    obs::ScopedSpan publish_span(collect ? &span_sink_ : nullptr, root_ctx,
                                 "serve.publish");
    for (const Subscriber& s : subscribers_) s(tr);
  }
  FinishTickTrace(tr.tick, end_time, overrun ? "ok+deadline_overrun" : "ok",
                  tick_start_mono, tr.tick_wall_seconds, /*dump=*/overrun);
  return TickOutcome::kOk;
}

void ShardedStreamServer::NoteBatchDequeued(const RoutedBatch& rb,
                                            double pop_seconds) {
  if (config_.trace.collect_spans()) {
    // The queue-wait span carries the *client's* trace context (when the
    // batch arrived with one) — in the tick's tree it is the visible splice
    // between the wire trace and the coordinator-minted tick trace.
    obs::Span s;
    s.trace_id = rb.ctx.trace.trace_id;
    s.span_id = span_sink_.NewSpanId();
    s.parent_span_id = rb.ctx.trace.span_id;
    s.name = "serve.queue_wait";
    s.start_seconds = rb.enqueue_seconds;
    s.duration_seconds = std::max(0.0, pop_seconds - rb.enqueue_seconds);
    if (!rb.ctx.tenant.empty()) s.labels.emplace_back("tenant", rb.ctx.tenant);
    s.labels.emplace_back("edges", std::to_string(rb.global_edges));
    span_sink_.Add(std::move(s));
  }
  if (rb.ctx.arrival_seconds >= 0 && rb.global_edges > 0) {
    FreshnessMeta meta;
    meta.tenant = rb.ctx.tenant.empty() ? "default" : rb.ctx.tenant;
    meta.arrival_seconds = rb.ctx.arrival_seconds;
    // Exemplars only link sampled traces; the measurement itself is
    // recorded for every stamped batch.
    meta.trace_id = rb.ctx.trace.sampled ? rb.ctx.trace.trace_id : 0;
    // Endpoints gathered across all shard sub-batches; mirrored copies
    // collapse in the sort-unique below.
    meta.entities.reserve(rb.global_edges * 2);
    for (const std::vector<TimedEdge>& part : rb.parts) {
      for (const TimedEdge& e : part) {
        meta.entities.push_back(e.src);
        meta.entities.push_back(e.dst);
      }
    }
    std::sort(meta.entities.begin(), meta.entities.end());
    meta.entities.erase(
        std::unique(meta.entities.begin(), meta.entities.end()),
        meta.entities.end());
    if (pending_freshness_.size() >= kMaxPendingFreshness) {
      pending_freshness_.erase(pending_freshness_.begin());
    }
    pending_freshness_.push_back(std::move(meta));
  }
}

obs::Histogram* ShardedStreamServer::FreshnessHistogram(
    const std::string& tenant) {
  auto it = freshness_hist_.find(tenant);
  if (it != freshness_hist_.end()) return it->second;
  obs::Histogram* h = registry_->GetHistogram(
      "glp_serve_freshness_seconds",
      "Wire arrival to confirmed-cluster publish, per tenant",
      {{"tenant", tenant}});
  freshness_hist_.emplace(tenant, h);
  return h;
}

void ShardedStreamServer::ObserveFreshness(const TickResult& tr) {
  if (pending_freshness_.empty() || tr.new_confirmed.empty()) return;
  std::vector<VertexId> confirmed;
  for (const auto& members : tr.new_confirmed) {
    confirmed.insert(confirmed.end(), members.begin(), members.end());
  }
  std::sort(confirmed.begin(), confirmed.end());
  const double now = obs::MonotonicSeconds();
  size_t kept = 0;
  for (FreshnessMeta& m : pending_freshness_) {
    // Sorted-merge intersection test: does any of the batch's endpoints
    // sit in a cluster confirmed this tick?
    bool hit = false;
    for (size_t i = 0, j = 0;
         i < m.entities.size() && j < confirmed.size();) {
      if (m.entities[i] < confirmed[j]) {
        ++i;
      } else if (confirmed[j] < m.entities[i]) {
        ++j;
      } else {
        hit = true;
        break;
      }
    }
    if (hit) {
      FreshnessHistogram(m.tenant)->ObserveWithExemplar(
          std::max(0.0, now - m.arrival_seconds), m.trace_id);
    } else {
      pending_freshness_[kept++] = std::move(m);
    }
  }
  pending_freshness_.resize(kept);
}

void ShardedStreamServer::FinishTickTrace(int64_t tick, double end_time,
                                          const char* outcome,
                                          double start_seconds,
                                          double wall_seconds, bool dump) {
  if (!config_.trace.collect_spans() || recorder_ == nullptr) {
    tick_trace_ = obs::SpanContext{};
    tick_root_span_ = 0;
    return;
  }
  obs::TickTrace t;
  t.tick = tick;
  t.window_end = end_time;
  t.outcome = outcome;
  t.tick_wall_seconds = wall_seconds;
  t.spans = span_sink_.Drain();
  obs::Span root;
  root.trace_id = tick_trace_.trace_id;
  root.span_id = tick_root_span_;
  root.name = "serve.tick";
  root.start_seconds = start_seconds;
  root.duration_seconds = wall_seconds;
  t.spans.insert(t.spans.begin(), std::move(root));
  recorder_->Record(std::move(t));
  if (dump) {
    GLP_LOG(Warning) << "tick " << tick << " " << outcome
                     << "; flight-recorder dump: "
                     << recorder_->LastTickJson();
  }
  tick_trace_ = obs::SpanContext{};
  tick_root_span_ = 0;
}

}  // namespace glp::serve
