#include "serve/net/replication.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "serve/net/client.h"
#include "util/json.h"
#include "util/logging.h"

namespace glp::serve::net {

namespace {

double WallSecondsNow() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// First value of `key` in an application/x-www-form-urlencoded query
/// string ("from=5&wait_ms=100"); empty when absent. No %-decoding — the
/// replication parameters are all plain integers.
std::string QueryParam(const std::string& query, const std::string& key) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      return query.substr(eq + 1, amp - eq - 1);
    }
    pos = amp + 1;
  }
  return "";
}

uint64_t QueryU64(const std::string& query, const std::string& key,
                  uint64_t fallback) {
  const std::string v = QueryParam(query, key);
  if (v.empty()) return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') return fallback;
  return static_cast<uint64_t>(parsed);
}

obs::HttpResponse JsonError(int status, const std::string& message) {
  obs::HttpResponse r;
  r.status = status;
  r.content_type = "application/json";
  r.body = "{\"error\":\"" + json::Escape(message) + "\"}\n";
  return r;
}

}  // namespace

ReplicationService::ReplicationService(
    const wal::Wal* wal, std::function<Result<uint64_t>()> on_promote)
    : wal_(wal), on_promote_(std::move(on_promote)) {}

void ReplicationService::Register(obs::HttpServer* http) {
  http->Route("GET", "/v1/wal",
              [this](const obs::HttpRequest& r) { return HandleWal(r); });
  http->Route("POST", "/v1/promote", [this](const obs::HttpRequest& r) {
    return HandlePromote(r);
  });
}

obs::HttpResponse ReplicationService::HandleWal(
    const obs::HttpRequest& req) const {
  if (wal_ == nullptr) {
    return JsonError(503, "durability disabled: no write-ahead log");
  }
  const uint64_t from = std::max<uint64_t>(QueryU64(req.query, "from", 1), 1);
  const uint64_t wait_ms = QueryU64(req.query, "wait_ms", 0);
  const size_t max_bytes = static_cast<size_t>(
      std::min<uint64_t>(QueryU64(req.query, "max_bytes", 1u << 20),
                         kMaxResponseBytes));
  if (wait_ms > 0 && wal_->last_seq() < from) {
    // Long-poll: this thread belongs to one follower connection, so
    // parking it does not stall anything else (thread-per-connection).
    (void)wal_->WaitForSeq(from, static_cast<double>(wait_ms) / 1000.0);
  }
  Result<std::string> raw = wal_->ReadRawFrom(from, max_bytes, nullptr);
  if (!raw.ok()) {
    return JsonError(500, raw.status().message());
  }
  obs::HttpResponse r;
  r.content_type = kWalContentType;
  r.body = std::move(raw).value();
  r.headers.emplace_back("X-Glp-Wal-Epoch", std::to_string(wal_->epoch()));
  r.headers.emplace_back("X-Glp-Wal-Last-Seq",
                         std::to_string(wal_->last_seq()));
  return r;
}

obs::HttpResponse ReplicationService::HandlePromote(
    const obs::HttpRequest&) const {
  if (!on_promote_) {
    return JsonError(503, "promotion not wired on this server");
  }
  Result<uint64_t> epoch = on_promote_();
  if (!epoch.ok()) {
    return JsonError(500, epoch.status().message());
  }
  obs::HttpResponse r;
  r.content_type = "application/json";
  r.body = "{\"epoch\":" + std::to_string(epoch.value()) + "}\n";
  return r;
}

// ---------------------------------------------------------------- tailer --

WalTailer::WalTailer(Server* server, Options options)
    : server_(server), options_(options) {}

WalTailer::~WalTailer() { Stop(); }

void WalTailer::Start(uint64_t from_seq, uint64_t epoch) {
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  if (thread_.joinable()) return;
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  last_applied_seq_.store(from_seq, std::memory_order_release);
  thread_ = std::thread([this, from_seq, epoch] { Loop(from_seq, epoch); });
}

void WalTailer::Stop() {
  stop_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

Status WalTailer::last_error() const {
  std::lock_guard<std::mutex> lk(err_mu_);
  return last_error_;
}

void WalTailer::RecordError(const Status& st) {
  std::lock_guard<std::mutex> lk(err_mu_);
  if (last_error_.ok()) last_error_ = st;
}

void WalTailer::Loop(uint64_t start_seq, uint64_t epoch) {
  obs::Gauge* lag = server_->metrics()->GetGauge(
      "glp_serve_replica_lag_seconds",
      "Wall-clock gap between the primary's append and the standby apply "
      "of the newest replicated batch");
  HttpClient client;
  uint64_t next = start_seq + 1;
  uint64_t local_epoch = epoch;
  const auto backoff = [&] {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options_.retry_backoff_seconds));
  };
  while (!stop_.load(std::memory_order_acquire)) {
    if (!client.connected() &&
        !client.Connect(options_.primary_port).ok()) {
      backoff();
      continue;
    }
    const std::string path =
        "/v1/wal?from=" + std::to_string(next) +
        "&wait_ms=" + std::to_string(options_.poll_wait_ms) +
        "&max_bytes=" + std::to_string(options_.max_bytes);
    Result<HttpClient::Response> r = client.Get(path);
    if (!r.ok()) {
      backoff();
      continue;
    }
    if (r.value().status != 200) {
      backoff();  // 503 until the primary's WAL opens; transient otherwise
      continue;
    }
    const std::string remote_epoch_hdr = r.value().header("x-glp-wal-epoch");
    if (!remote_epoch_hdr.empty()) {
      const uint64_t remote_epoch =
          std::strtoull(remote_epoch_hdr.c_str(), nullptr, 10);
      if (remote_epoch < local_epoch) {
        // The peer is a deposed primary (our epoch is newer — we were
        // promoted, or learned of a promotion). Stop rather than apply
        // its fenced writes.
        RecordError(Status::InvalidArgument(
            "replication fenced: primary epoch " +
            std::to_string(remote_epoch) + " behind local epoch " +
            std::to_string(local_epoch)));
        break;
      }
      local_epoch = std::max(local_epoch, remote_epoch);
    }
    const std::string& body = r.value().body;
    size_t pos = 0;
    bool fatal = false;
    while (pos < body.size()) {
      wal::WalFrame f;
      const wal::FrameParse p = wal::ParseFrame(body, &pos, &f);
      if (p == wal::FrameParse::kEnd) break;
      if (p == wal::FrameParse::kTorn) {
        // A max_bytes cut never lands mid-frame (the server emits whole
        // frames), so torn bytes mean wire corruption — drop the
        // connection and refetch from the last applied position.
        client.Close();
        break;
      }
      const double frame_wall = f.wall_seconds;
      const uint64_t seq = f.seq;
      IngestContext ctx;
      ctx.wal_seq = f.seq;
      ctx.wal_epoch = f.epoch;
      ctx.wal_wall_seconds = f.wall_seconds;
      if (!server_->Ingest(std::move(f.edges), std::move(ctx))) {
        // The local server refused the frame: fenced epoch, validation
        // failure, or the server died. All are terminal for this tailer.
        RecordError(Status::Internal(
            "standby rejected replicated frame seq " + std::to_string(seq) +
            (server_->running() ? "" : " (server not running)")));
        fatal = true;
        break;
      }
      last_applied_seq_.store(seq, std::memory_order_release);
      next = seq + 1;
      if (frame_wall > 0) {
        lag->Set(std::max(0.0, WallSecondsNow() - frame_wall));
      }
    }
    if (fatal) break;
    // An empty body just means the long poll expired with nothing new.
  }
  running_.store(false, std::memory_order_release);
}

}  // namespace glp::serve::net
