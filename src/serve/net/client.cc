#include "serve/net/client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "obs/http.h"
#include "serve/net/wire.h"

namespace glp::serve::net {

double ParseRetryAfterSeconds(const std::string& value) {
  const char* s = value.c_str();
  char* end = nullptr;
  const double parsed = std::strtod(s, &end);
  if (end == s) return 0;  // nothing numeric at all (e.g. an HTTP-date)
  // Trailing junk after the number ("5; please", "2s") means the value is
  // not plain delta-seconds — treat as absent rather than half-parse it.
  for (; *end != '\0'; ++end) {
    if (*end != ' ' && *end != '\t') return 0;
  }
  if (!std::isfinite(parsed) || parsed < 0) return 0;
  return std::min(parsed, 3600.0);
}

double FullJitterBackoff(double base_seconds, double cap_seconds,
                         uint64_t random_u64) {
  const double hi =
      std::max(0.0, std::min(base_seconds, cap_seconds));
  // 53-bit mantissa draw → uniform double in [0, 1).
  const double u =
      static_cast<double>(random_u64 >> 11) * 0x1.0p-53;
  return std::max(0.001, u * hi);
}

HttpClient::~HttpClient() { Close(); }

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status HttpClient::Connect(int port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    Close();
    return Status::IoError("connect to :" + std::to_string(port) + ": " +
                           err);
  }
  port_ = port;
  return Status::OK();
}

Result<HttpClient::Response> HttpClient::RequestOnce(
    const std::string& method, const std::string& path,
    const std::string& content_type, const std::string& body,
    const std::string& token, const Headers& extra_headers) {
  if (fd_ < 0) return Status::IoError("client not connected");

  std::string req = method + " " + path + " HTTP/1.1\r\nHost: localhost\r\n";
  if (!token.empty()) req += "Authorization: Bearer " + token + "\r\n";
  if (!content_type.empty()) req += "Content-Type: " + content_type + "\r\n";
  for (const auto& [name, value] : extra_headers) {
    req += name + ": " + value + "\r\n";
  }
  req += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  req += body;
  if (!obs::SendAll(fd_, req.data(), req.size())) {
    return Status::IoError("send failed (peer closed?)");
  }

  // Read the response: head, then Content-Length body bytes.
  std::string buf;
  size_t head_end = std::string::npos;
  char chunk[8192];
  while ((head_end = buf.find("\r\n\r\n")) == std::string::npos) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return Status::IoError("connection closed mid-response");
    buf.append(chunk, static_cast<size_t>(n));
    if (buf.size() > (1u << 20)) {
      return Status::IoError("response head too large");
    }
  }

  Response resp;
  // Status line: HTTP/1.1 NNN reason.
  {
    const size_t sp = buf.find(' ');
    if (sp == std::string::npos || sp + 4 > buf.size()) {
      return Status::IoError("malformed response status line");
    }
    resp.status = std::atoi(buf.c_str() + sp + 1);
  }
  // Headers we care about.
  size_t content_length = 0;
  {
    size_t pos = buf.find("\r\n") + 2;
    while (pos < head_end) {
      size_t eol = buf.find("\r\n", pos);
      if (eol == std::string::npos || eol > head_end) eol = head_end;
      std::string line = buf.substr(pos, eol - pos);
      pos = eol + 2;
      const size_t colon = line.find(':');
      if (colon == std::string::npos) continue;
      std::string name = line.substr(0, colon);
      for (char& c : name) c = static_cast<char>(std::tolower(c));
      std::string value = line.substr(colon + 1);
      while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
        value.erase(value.begin());
      }
      if (name == "content-length") {
        content_length = static_cast<size_t>(std::strtoull(value.c_str(),
                                                           nullptr, 10));
      } else if (name == "retry-after") {
        resp.retry_after = ParseRetryAfterSeconds(value);
      } else if (name == "connection" && value.compare(0, 5, "close") == 0) {
        resp.closed = true;
      }
      resp.headers.emplace_back(std::move(name), std::move(value));
    }
  }
  const size_t body_start = head_end + 4;
  while (buf.size() - body_start < content_length) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return Status::IoError("connection closed mid-body");
    buf.append(chunk, static_cast<size_t>(n));
  }
  resp.body = buf.substr(body_start, content_length);
  if (resp.closed) Close();
  return resp;
}

Result<HttpClient::Response> HttpClient::Request(
    const std::string& method, const std::string& path,
    const std::string& content_type, const std::string& body,
    const std::string& token, const Headers& extra_headers) {
  if (fd_ < 0 && port_ != 0) {
    GLP_RETURN_NOT_OK(Connect(port_));
  }
  Result<Response> r =
      RequestOnce(method, path, content_type, body, token, extra_headers);
  if (!r.ok() && port_ != 0) {
    // The server may have dropped an idle keep-alive connection between
    // requests; reconnect once and retry.
    GLP_RETURN_NOT_OK(Connect(port_));
    return RequestOnce(method, path, content_type, body, token,
                       extra_headers);
  }
  return r;
}

Result<HttpClient::Response> HttpClient::PostBatch(
    const std::vector<graph::TimedEdge>& batch, const std::string& token,
    const obs::SpanContext& trace) {
  Headers headers;
  if (trace.valid()) {
    headers.emplace_back("traceparent", obs::FormatTraceparent(trace));
  }
  return Request("POST", "/v1/ingest", kBinaryContentType,
                 EncodeBinaryBatch(batch), token, headers);
}

Result<HttpClient::Response> HttpClient::PostBatchWithRetry(
    const std::vector<graph::TimedEdge>& batch, const std::string& token,
    int max_retries, double max_wait_seconds, const obs::SpanContext& trace) {
  Result<Response> r = PostBatch(batch, token, trace);
  for (int attempt = 0; attempt < max_retries; ++attempt) {
    if (!r.ok() || r.value().status != 429) return r;
    const double base =
        r.value().retry_after > 0 ? r.value().retry_after : 0.01;
    const double wait = FullJitterBackoff(base, max_wait_seconds, rng_());
    std::this_thread::sleep_for(std::chrono::duration<double>(wait));
    r = PostBatch(batch, token, trace);
  }
  return r;
}

}  // namespace glp::serve::net
