// Per-tenant admission control for the network ingest service
// (DESIGN.md §4.11).
//
// The policy layer the config split was made for: TenantPolicy is its own
// struct (like TickPolicy/ResiliencePolicy) instead of more ServerConfig
// fields. A TenantRegistry holds the fleet of tenants, authenticates the
// bearer token stub, and runs the admission ladder for each batch:
//
//   authenticate -> global token bucket -> tenant token bucket -> TryIngest
//
// Token buckets are deterministic — callers supply `now` in seconds, so
// refill math is exactly testable without clock mocking. Attribution: each
// tenant carries a 1-second-bucket sliding rate window (edges/sec over the
// last minute) plus glp_serve_tenant_* counters and histograms in the
// server's metric registry.

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace glp::serve::net {

/// Admission policy for one tenant.
struct TenantPolicy {
  std::string name;
  /// Bearer-token auth stub: the literal token the client must present.
  std::string token;
  /// Sustained edges/sec this tenant may ingest; 0 = unlimited.
  double rate_edges_per_sec = 0;
  /// Token-bucket capacity: the burst a quiescent tenant may send at once.
  /// Defaults (when 0) to 4x the rate, min 1024.
  double burst_edges = 0;
};

/// Parses the --tenants spec: comma-separated `name:token[:rate[:burst]]`.
Result<std::vector<TenantPolicy>> ParseTenantSpec(const std::string& spec);

/// Deterministic token bucket. Not thread-safe — the owner serializes.
class TokenBucket {
 public:
  /// rate <= 0 means unlimited (TryAcquire always succeeds).
  TokenBucket(double rate_per_sec, double burst);

  /// Takes `cost` tokens at time `now_seconds` (monotonic, caller-supplied).
  /// On refusal returns false and sets *retry_after_seconds to when the
  /// deficit will have refilled. A cost above the burst capacity is
  /// refused deterministically — refill caps at burst, so no wait (the
  /// quoted retry_after included) ever satisfies it; callers admitting
  /// variable-size work should size burst above their largest batch.
  bool TryAcquire(double cost, double now_seconds,
                  double* retry_after_seconds);

  double tokens() const { return tokens_; }

 private:
  double rate_;
  double burst_;
  double tokens_;
  double last_refill_ = 0;
  bool primed_ = false;
};

/// Sliding rate window: ring of 1-second buckets. Add() attributes counts
/// to the current second; PerSecond() averages over the trailing window,
/// dropping buckets older than the span. Not thread-safe.
class RateWindow {
 public:
  explicit RateWindow(int span_seconds = 60);

  void Add(uint64_t count, double now_seconds);
  /// Average count/sec over min(span, time observed so far).
  double PerSecond(double now_seconds);

 private:
  void Advance(double now_seconds);

  std::vector<uint64_t> buckets_;
  int64_t head_second_ = 0;  ///< absolute second index of buckets_[head_]
  size_t head_ = 0;
  bool primed_ = false;
  double first_seen_ = 0;
};

/// How one batch fared against the admission ladder.
enum class Admission {
  kOk,
  kThrottledGlobal,  ///< global bucket refused (fleet-wide overload)
  kThrottledTenant,  ///< tenant bucket refused (per-tenant fairness)
};

/// The tenant fleet: authentication, rate limiting, attribution.
/// Thread-safe; one instance per IngestService.
class TenantRegistry {
 public:
  /// `global_rate_edges_per_sec` (0 = unlimited) caps aggregate admission
  /// across all tenants, on top of each tenant's own bucket. Metrics land
  /// in `registry` (not owned, may be null).
  TenantRegistry(std::vector<TenantPolicy> tenants,
                 double global_rate_edges_per_sec,
                 double global_burst_edges, obs::MetricRegistry* registry);

  /// Token -> tenant index, or -1 (reject with 401).
  int Authenticate(std::string_view token) const;

  /// Runs the rate-limit ladder for `edges` at `now_seconds`. On a
  /// throttle, *retry_after_seconds says when to come back.
  Admission Admit(int tenant, size_t edges, double now_seconds,
                  double* retry_after_seconds);

  /// Attribution + QoS telemetry for a batch's final outcome. `result` is
  /// the metric label: "accepted", "throttled", "shed", "rejected",
  /// "stopped". Accepted batches also record ingest lag (stream head
  /// minus batch max time, clamped at 0) and feed the rate window.
  void Record(int tenant, const std::string& result, size_t edges,
              double now_seconds, double lag_days,
              double admission_seconds);

  size_t num_tenants() const { return tenants_.size(); }
  const TenantPolicy& policy(int tenant) const {
    return tenants_[tenant]->policy;
  }

  /// Tenant's trailing edges/sec (the sliding-window attribution).
  double WindowEdgesPerSecond(int tenant, double now_seconds);

 private:
  struct Tenant {
    TenantPolicy policy;
    TokenBucket bucket;
    RateWindow window;
    std::mutex mu;  ///< serializes bucket + window
    // Resolved instruments (null when no registry).
    obs::Counter* edges_accepted = nullptr;
    obs::Counter* edges_throttled = nullptr;
    obs::Histogram* ingest_lag_days = nullptr;
    obs::Histogram* admission_seconds = nullptr;
    obs::Gauge* window_rate = nullptr;

    Tenant(TenantPolicy p, double burst);
  };

  obs::Counter* BatchCounter(int tenant, const std::string& result);

  std::vector<std::unique_ptr<Tenant>> tenants_;
  TokenBucket global_bucket_;
  std::mutex global_mu_;
  obs::MetricRegistry* registry_;
};

}  // namespace glp::serve::net
