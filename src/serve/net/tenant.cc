#include "serve/net/tenant.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace glp::serve::net {

// ---------------------------------------------------------------- spec ----

Result<std::vector<TenantPolicy>> ParseTenantSpec(const std::string& spec) {
  std::vector<TenantPolicy> out;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;

    std::vector<std::string> parts;
    size_t p = 0;
    while (p <= entry.size()) {
      size_t colon = entry.find(':', p);
      if (colon == std::string::npos) colon = entry.size();
      parts.push_back(entry.substr(p, colon - p));
      p = colon + 1;
    }
    if (parts.size() < 2 || parts.size() > 4 || parts[0].empty() ||
        parts[1].empty()) {
      return Status::InvalidArgument(
          "tenant entry '" + entry +
          "' is not name:token[:rate[:burst]]");
    }
    TenantPolicy t;
    t.name = parts[0];
    t.token = parts[1];
    if (parts.size() >= 3) {
      char* end = nullptr;
      t.rate_edges_per_sec = std::strtod(parts[2].c_str(), &end);
      if (end == nullptr || *end != '\0' || t.rate_edges_per_sec < 0) {
        return Status::InvalidArgument("bad tenant rate in '" + entry + "'");
      }
    }
    if (parts.size() == 4) {
      char* end = nullptr;
      t.burst_edges = std::strtod(parts[3].c_str(), &end);
      if (end == nullptr || *end != '\0' || t.burst_edges < 0) {
        return Status::InvalidArgument("bad tenant burst in '" + entry + "'");
      }
    }
    for (const TenantPolicy& prev : out) {
      if (prev.name == t.name) {
        return Status::InvalidArgument("duplicate tenant name '" + t.name +
                                       "'");
      }
      if (prev.token == t.token) {
        return Status::InvalidArgument("duplicate tenant token for '" +
                                       t.name + "'");
      }
    }
    out.push_back(std::move(t));
  }
  if (out.empty()) {
    return Status::InvalidArgument("tenant spec is empty");
  }
  return out;
}

// -------------------------------------------------------------- bucket ----

TokenBucket::TokenBucket(double rate_per_sec, double burst)
    : rate_(rate_per_sec),
      burst_(burst > 0 ? burst : std::max(4.0 * rate_per_sec, 1024.0)),
      tokens_(burst_) {}

bool TokenBucket::TryAcquire(double cost, double now_seconds,
                             double* retry_after_seconds) {
  if (rate_ <= 0) return true;  // unlimited
  if (!primed_) {
    primed_ = true;
    last_refill_ = now_seconds;
  }
  if (now_seconds > last_refill_) {
    tokens_ = std::min(burst_, tokens_ + (now_seconds - last_refill_) * rate_);
    last_refill_ = now_seconds;
  }
  if (tokens_ >= cost) {
    tokens_ -= cost;
    return true;
  }
  if (retry_after_seconds != nullptr) {
    // Deficit over rate. For cost <= burst this is exactly when a retry
    // will succeed. For cost > burst it is a lower bound that can *never*
    // become satisfiable (refill caps at burst) — such a request is
    // over-sized for the policy, refused deterministically every time,
    // which is what the admission tests pin down.
    *retry_after_seconds = (cost - tokens_) / rate_;
  }
  return false;
}

// -------------------------------------------------------------- window ----

RateWindow::RateWindow(int span_seconds)
    : buckets_(static_cast<size_t>(std::max(span_seconds, 1)), 0) {}

void RateWindow::Advance(double now_seconds) {
  const int64_t sec = static_cast<int64_t>(std::floor(now_seconds));
  if (!primed_) {
    primed_ = true;
    head_second_ = sec;
    first_seen_ = now_seconds;
    return;
  }
  if (sec <= head_second_) return;  // same second (or a clock step back)
  const int64_t steps = sec - head_second_;
  const int64_t span = static_cast<int64_t>(buckets_.size());
  if (steps >= span) {
    std::fill(buckets_.begin(), buckets_.end(), 0);
  } else {
    for (int64_t i = 0; i < steps; ++i) {
      head_ = (head_ + 1) % buckets_.size();
      buckets_[head_] = 0;
    }
  }
  head_second_ = sec;
}

void RateWindow::Add(uint64_t count, double now_seconds) {
  Advance(now_seconds);
  buckets_[head_] += count;
}

double RateWindow::PerSecond(double now_seconds) {
  Advance(now_seconds);
  uint64_t total = 0;
  for (const uint64_t b : buckets_) total += b;
  const double observed =
      primed_ ? std::max(now_seconds - first_seen_, 1.0) : 1.0;
  const double span =
      std::min(observed, static_cast<double>(buckets_.size()));
  return static_cast<double>(total) / span;
}

// ------------------------------------------------------------ registry ----

TenantRegistry::Tenant::Tenant(TenantPolicy p, double burst)
    : policy(std::move(p)), bucket(policy.rate_edges_per_sec, burst) {}

TenantRegistry::TenantRegistry(std::vector<TenantPolicy> tenants,
                               double global_rate_edges_per_sec,
                               double global_burst_edges,
                               obs::MetricRegistry* registry)
    : global_bucket_(global_rate_edges_per_sec, global_burst_edges),
      registry_(registry) {
  tenants_.reserve(tenants.size());
  for (TenantPolicy& t : tenants) {
    const double burst = t.burst_edges;
    auto tenant = std::make_unique<Tenant>(std::move(t), burst);
    if (registry_ != nullptr) {
      const obs::Labels labels = {{"tenant", tenant->policy.name}};
      tenant->edges_accepted = registry_->GetCounter(
          "glp_serve_tenant_edges_total", "Edges accepted per tenant",
          labels);
      tenant->edges_throttled = registry_->GetCounter(
          "glp_serve_tenant_edges_throttled_total",
          "Edges refused by rate limiting per tenant", labels);
      tenant->ingest_lag_days = registry_->GetHistogram(
          "glp_serve_tenant_ingest_lag_days",
          "Stream head minus batch max time at admission, per tenant",
          labels);
      tenant->admission_seconds = registry_->GetHistogram(
          "glp_serve_tenant_admission_seconds",
          "Wall time from request parse to admission verdict, per tenant",
          labels);
      tenant->window_rate = registry_->GetGauge(
          "glp_serve_tenant_window_edges_per_sec",
          "Trailing sliding-window ingest rate per tenant", labels);
    }
    tenants_.push_back(std::move(tenant));
  }
}

int TenantRegistry::Authenticate(std::string_view token) const {
  if (token.empty()) return -1;
  for (size_t i = 0; i < tenants_.size(); ++i) {
    if (tenants_[i]->policy.token == token) return static_cast<int>(i);
  }
  return -1;
}

Admission TenantRegistry::Admit(int tenant, size_t edges, double now_seconds,
                                double* retry_after_seconds) {
  const double cost = static_cast<double>(edges);
  {
    std::lock_guard<std::mutex> lk(global_mu_);
    if (!global_bucket_.TryAcquire(cost, now_seconds, retry_after_seconds)) {
      return Admission::kThrottledGlobal;
    }
  }
  Tenant& t = *tenants_[tenant];
  std::lock_guard<std::mutex> lk(t.mu);
  if (!t.bucket.TryAcquire(cost, now_seconds, retry_after_seconds)) {
    if (t.edges_throttled != nullptr) t.edges_throttled->Increment(edges);
    return Admission::kThrottledTenant;
  }
  return Admission::kOk;
}

obs::Counter* TenantRegistry::BatchCounter(int tenant,
                                           const std::string& result) {
  if (registry_ == nullptr) return nullptr;
  return registry_->GetCounter(
      "glp_serve_tenant_batches_total",
      "Ingest batches per tenant by admission outcome",
      {{"tenant", tenants_[tenant]->policy.name}, {"result", result}});
}

void TenantRegistry::Record(int tenant, const std::string& result,
                            size_t edges, double now_seconds,
                            double lag_days, double admission_seconds) {
  Tenant& t = *tenants_[tenant];
  if (obs::Counter* c = BatchCounter(tenant, result)) c->Increment();
  std::lock_guard<std::mutex> lk(t.mu);
  if (t.admission_seconds != nullptr) {
    t.admission_seconds->Observe(admission_seconds);
  }
  if (result == "accepted") {
    t.window.Add(edges, now_seconds);
    if (t.edges_accepted != nullptr) t.edges_accepted->Increment(edges);
    if (t.ingest_lag_days != nullptr) {
      t.ingest_lag_days->Observe(std::max(lag_days, 0.0));
    }
    if (t.window_rate != nullptr) {
      t.window_rate->Set(t.window.PerSecond(now_seconds));
    }
  }
}

double TenantRegistry::WindowEdgesPerSecond(int tenant, double now_seconds) {
  Tenant& t = *tenants_[tenant];
  std::lock_guard<std::mutex> lk(t.mu);
  return t.window.PerSecond(now_seconds);
}

}  // namespace glp::serve::net
