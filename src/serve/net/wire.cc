#include "serve/net/wire.h"

#include <cstdlib>
#include <cstring>

namespace glp::serve::net {

namespace {

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v & 0xff);
  b[1] = static_cast<char>((v >> 8) & 0xff);
  b[2] = static_cast<char>((v >> 16) & 0xff);
  b[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(b, 4);
}

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

void PutF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  char b[8];
  for (int i = 0; i < 8; ++i) {
    b[i] = static_cast<char>((bits >> (8 * i)) & 0xff);
  }
  out->append(b, 8);
}

double GetF64(const char* p) {
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<uint64_t>(static_cast<unsigned char>(p[i]))
            << (8 * i);
  }
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

std::string EncodeBinaryBatch(const std::vector<graph::TimedEdge>& batch) {
  std::string out;
  out.reserve(8 + 16 * batch.size());
  PutU32(&out, kBatchMagic);
  PutU32(&out, static_cast<uint32_t>(batch.size()));
  for (const graph::TimedEdge& e : batch) {
    PutU32(&out, e.src);
    PutU32(&out, e.dst);
    PutF64(&out, e.time);
  }
  return out;
}

Result<std::vector<graph::TimedEdge>> DecodeBinaryBatch(
    std::string_view body) {
  if (body.size() < 8) {
    return Status::InvalidArgument("binary batch shorter than its header");
  }
  if (GetU32(body.data()) != kBatchMagic) {
    return Status::InvalidArgument("bad batch magic");
  }
  const uint32_t count = GetU32(body.data() + 4);
  const size_t expect = 8 + static_cast<size_t>(count) * 16;
  if (body.size() != expect) {
    return Status::InvalidArgument(
        "batch length mismatch: declared " + std::to_string(count) +
        " edges (" + std::to_string(expect) + " bytes), body is " +
        std::to_string(body.size()) + " bytes");
  }
  std::vector<graph::TimedEdge> batch;
  batch.reserve(count);
  const char* p = body.data() + 8;
  for (uint32_t i = 0; i < count; ++i, p += 16) {
    graph::TimedEdge e;
    e.src = GetU32(p);
    e.dst = GetU32(p + 4);
    e.time = GetF64(p + 8);
    batch.push_back(e);
  }
  return batch;
}

std::string EncodeNdjsonBatch(const std::vector<graph::TimedEdge>& batch) {
  std::string out;
  char buf[96];
  for (const graph::TimedEdge& e : batch) {
    std::snprintf(buf, sizeof(buf), "{\"src\":%u,\"dst\":%u,\"time\":%.17g}\n",
                  e.src, e.dst, e.time);
    out += buf;
  }
  return out;
}

namespace {

// Parses one {"src":N,"dst":N,"time":F} line (keys in any order, each
// exactly once). Returns false on any deviation.
bool ParseNdjsonLine(std::string_view line, graph::TimedEdge* edge) {
  size_t i = 0;
  const auto skip_ws = [&] {
    while (i < line.size() &&
           (line[i] == ' ' || line[i] == '\t' || line[i] == '\r')) {
      ++i;
    }
  };
  skip_ws();
  if (i >= line.size() || line[i] != '{') return false;
  ++i;
  bool have_src = false, have_dst = false, have_time = false;
  for (;;) {
    skip_ws();
    if (i < line.size() && line[i] == '}') {
      ++i;
      break;
    }
    if (i >= line.size() || line[i] != '"') return false;
    const size_t key_end = line.find('"', i + 1);
    if (key_end == std::string_view::npos) return false;
    const std::string_view key = line.substr(i + 1, key_end - i - 1);
    i = key_end + 1;
    skip_ws();
    if (i >= line.size() || line[i] != ':') return false;
    ++i;
    skip_ws();
    // Numeric token.
    const size_t tok_start = i;
    while (i < line.size() && line[i] != ',' && line[i] != '}' &&
           line[i] != ' ' && line[i] != '\t') {
      ++i;
    }
    const std::string tok(line.substr(tok_start, i - tok_start));
    if (tok.empty()) return false;
    char* end = nullptr;
    if (key == "src" || key == "dst") {
      const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || tok[0] == '-' ||
          v > 0xffffffffull) {
        return false;
      }
      if (key == "src") {
        if (have_src) return false;
        edge->src = static_cast<graph::VertexId>(v);
        have_src = true;
      } else {
        if (have_dst) return false;
        edge->dst = static_cast<graph::VertexId>(v);
        have_dst = true;
      }
    } else if (key == "time") {
      if (have_time) return false;
      edge->time = std::strtod(tok.c_str(), &end);
      if (end == nullptr || *end != '\0') return false;
      have_time = true;
    } else {
      return false;
    }
    skip_ws();
    if (i < line.size() && line[i] == ',') ++i;
  }
  skip_ws();
  return i == line.size() && have_src && have_dst && have_time;
}

}  // namespace

Result<std::vector<graph::TimedEdge>> DecodeNdjsonBatch(
    std::string_view body) {
  std::vector<graph::TimedEdge> batch;
  size_t pos = 0, line_no = 0;
  while (pos < body.size()) {
    size_t eol = body.find('\n', pos);
    if (eol == std::string_view::npos) eol = body.size();
    const std::string_view line = body.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    // Blank (or CR-only) lines are tolerated.
    bool blank = true;
    for (const char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') {
        blank = false;
        break;
      }
    }
    if (blank) continue;
    graph::TimedEdge e{};
    if (!ParseNdjsonLine(line, &e)) {
      return Status::InvalidArgument("malformed ndjson edge at line " +
                                     std::to_string(line_no));
    }
    batch.push_back(e);
  }
  return batch;
}

namespace {

std::string_view BaseType(std::string_view content_type) {
  const size_t semi = content_type.find(';');
  std::string_view base = semi == std::string_view::npos
                              ? content_type
                              : content_type.substr(0, semi);
  while (!base.empty() && (base.back() == ' ' || base.back() == '\t')) {
    base.remove_suffix(1);
  }
  while (!base.empty() && (base.front() == ' ' || base.front() == '\t')) {
    base.remove_prefix(1);
  }
  return base;
}

}  // namespace

bool IsBinaryContentType(std::string_view content_type) {
  return BaseType(content_type) == kBinaryContentType;
}

bool IsNdjsonContentType(std::string_view content_type) {
  const std::string_view base = BaseType(content_type);
  return base == kNdjsonContentType || base == "application/json";
}

}  // namespace glp::serve::net
