// Minimal blocking HTTP/1.1 client with keep-alive — just enough to drive
// IngestService from the replay tool, the netload bench, and the
// end-to-end tests. One connection per instance; not thread-safe.

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/sliding_window.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/status.h"

namespace glp::serve::net {

/// Parses a Retry-After header value as seconds. Strict: the whole value
/// must be a finite, non-negative number (delta-seconds per RFC 9110;
/// fractional accepted as an extension) — anything else (garbage,
/// negative, inf/nan, trailing junk, HTTP-date) reads as 0, i.e. "absent",
/// so a malformed header can never stall or crash a retry loop. Clamped to
/// 3600 s: no server in this repo ever asks for more than a tick.
double ParseRetryAfterSeconds(const std::string& value);

/// Full-jitter backoff (AWS style): a wait drawn uniformly from
/// [0, min(base_seconds, cap_seconds)] using the caller's random draw,
/// floored at 1 ms so a zero draw still yields. Pure — tests feed fixed
/// `random_u64` values and assert exact bounds.
double FullJitterBackoff(double base_seconds, double cap_seconds,
                         uint64_t random_u64);

class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  struct Response {
    int status = 0;
    std::string body;
    /// Parsed Retry-After seconds; 0 when absent or unparseable.
    double retry_after = 0;
    /// Server asked to close (Connection: close) — the client reconnects
    /// transparently on the next request.
    bool closed = false;
    /// All response headers, names lower-cased, in wire order.
    std::vector<std::pair<std::string, std::string>> headers;

    /// First header matching `name` (lower-case); empty when absent.
    std::string header(const std::string& name) const {
      for (const auto& [n, v] : headers) {
        if (n == name) return v;
      }
      return "";
    }
  };

  /// Connects to 127.0.0.1:`port` (the in-repo services are loopback).
  Status Connect(int port);
  bool connected() const { return fd_ >= 0; }
  void Close();

  using Headers = std::vector<std::pair<std::string, std::string>>;

  /// One request/response over the persistent connection. Reconnects once
  /// if the server closed the connection between requests. `extra_headers`
  /// are emitted verbatim after the standard ones (traceparent et al.).
  Result<Response> Request(const std::string& method, const std::string& path,
                           const std::string& content_type,
                           const std::string& body,
                           const std::string& token = "",
                           const Headers& extra_headers = {});

  Result<Response> Get(const std::string& path) {
    return Request("GET", path, "", "", "");
  }

  /// POSTs one batch in binary wire format. A valid `trace` context is
  /// stamped as a W3C traceparent header, linking this batch's journey —
  /// queue wait, window append, freshness — to the caller's trace.
  Result<Response> PostBatch(const std::vector<graph::TimedEdge>& batch,
                             const std::string& token,
                             const obs::SpanContext& trace = {});

  /// PostBatch with bounded retry on 429, honoring Retry-After (capped per
  /// attempt by `max_wait_seconds` so tests stay fast). The actual sleep is
  /// full-jittered — uniform in [0, min(retry_after, max_wait_seconds)] —
  /// so a thundering herd of clients spreads out instead of re-colliding on
  /// the server's suggested instant. Any other status returns immediately.
  Result<Response> PostBatchWithRetry(
      const std::vector<graph::TimedEdge>& batch, const std::string& token,
      int max_retries = 50, double max_wait_seconds = 0.2,
      const obs::SpanContext& trace = {});

  /// Reseeds the jitter stream (deterministic backoff in tests).
  void SeedRetryJitter(uint64_t seed) { rng_ = Rng(seed); }

 private:
  Result<Response> RequestOnce(const std::string& method,
                               const std::string& path,
                               const std::string& content_type,
                               const std::string& body,
                               const std::string& token,
                               const Headers& extra_headers);

  int fd_ = -1;
  int port_ = 0;
  /// Jitter source for retry backoff; default-seeded per instance so
  /// concurrent clients draw distinct streams.
  Rng rng_{0x676c70636c69ULL ^
           reinterpret_cast<uint64_t>(static_cast<void*>(this))};
};

}  // namespace glp::serve::net
