// Minimal blocking HTTP/1.1 client with keep-alive — just enough to drive
// IngestService from the replay tool, the netload bench, and the
// end-to-end tests. One connection per instance; not thread-safe.

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/sliding_window.h"
#include "obs/trace.h"
#include "util/status.h"

namespace glp::serve::net {

class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  struct Response {
    int status = 0;
    std::string body;
    /// Parsed Retry-After seconds; 0 when absent.
    double retry_after = 0;
    /// Server asked to close (Connection: close) — the client reconnects
    /// transparently on the next request.
    bool closed = false;
  };

  /// Connects to 127.0.0.1:`port` (the in-repo services are loopback).
  Status Connect(int port);
  bool connected() const { return fd_ >= 0; }
  void Close();

  using Headers = std::vector<std::pair<std::string, std::string>>;

  /// One request/response over the persistent connection. Reconnects once
  /// if the server closed the connection between requests. `extra_headers`
  /// are emitted verbatim after the standard ones (traceparent et al.).
  Result<Response> Request(const std::string& method, const std::string& path,
                           const std::string& content_type,
                           const std::string& body,
                           const std::string& token = "",
                           const Headers& extra_headers = {});

  Result<Response> Get(const std::string& path) {
    return Request("GET", path, "", "", "");
  }

  /// POSTs one batch in binary wire format. A valid `trace` context is
  /// stamped as a W3C traceparent header, linking this batch's journey —
  /// queue wait, window append, freshness — to the caller's trace.
  Result<Response> PostBatch(const std::vector<graph::TimedEdge>& batch,
                             const std::string& token,
                             const obs::SpanContext& trace = {});

  /// PostBatch with bounded retry on 429, honoring Retry-After (capped per
  /// attempt by `max_wait_seconds` so tests stay fast). Any other status
  /// returns immediately.
  Result<Response> PostBatchWithRetry(
      const std::vector<graph::TimedEdge>& batch, const std::string& token,
      int max_retries = 50, double max_wait_seconds = 0.2,
      const obs::SpanContext& trace = {});

 private:
  Result<Response> RequestOnce(const std::string& method,
                               const std::string& path,
                               const std::string& content_type,
                               const std::string& body,
                               const std::string& token,
                               const Headers& extra_headers);

  int fd_ = -1;
  int port_ = 0;
};

}  // namespace glp::serve::net
