#include "serve/net/ingest_service.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/net/wire.h"
#include "util/json.h"
#include "util/logging.h"

namespace glp::serve::net {

namespace {

obs::HttpServer::Options HttpOptions(const IngestService::Options& o) {
  obs::HttpServer::Options h;
  h.max_body_bytes = o.max_batch_bytes;
  h.max_connections = o.max_connections;
  h.keep_alive = true;
  return h;
}

obs::HttpResponse JsonError(int status, const std::string& message) {
  obs::HttpResponse r;
  r.status = status;
  r.content_type = "application/json";
  r.body = "{\"error\":\"" + json::Escape(message) + "\"}\n";
  return r;
}

/// Bearer-token extraction: Authorization: Bearer <tok>, or the
/// curl-friendly X-Glp-Token: <tok>.
std::string ExtractToken(const obs::HttpRequest& req) {
  const std::string& auth = req.header("authorization");
  if (!auth.empty()) {
    constexpr char kBearer[] = "Bearer ";
    if (auth.compare(0, sizeof(kBearer) - 1, kBearer) == 0) {
      return auth.substr(sizeof(kBearer) - 1);
    }
    return "";  // unsupported scheme
  }
  return req.header("x-glp-token");
}

}  // namespace

std::string RetryAfterValue(double seconds) {
  return std::to_string(
      static_cast<int64_t>(std::ceil(std::max(seconds, 0.001))));
}

IngestService::IngestService(Server* server,
                             std::vector<TenantPolicy> tenants)
    : IngestService(server, std::move(tenants), Options{}) {}

IngestService::IngestService(Server* server,
                             std::vector<TenantPolicy> tenants,
                             Options options)
    : server_(server),
      tenants_(std::move(tenants), options.global_rate_edges_per_sec,
               options.global_burst_edges, server->metrics()),
      http_(HttpOptions(options)),
      epoch_(std::chrono::steady_clock::now()) {
  // Own routes first: first match wins, so the running-aware /healthz
  // shadows the registry's static one.
  http_.Route("POST", "/v1/ingest",
              [this](const obs::HttpRequest& r) { return HandleIngest(r); });
  http_.Route("GET", "/v1/stats",
              [this](const obs::HttpRequest& r) { return HandleStats(r); });
  http_.Route("GET", "/healthz",
              [this](const obs::HttpRequest& r) { return HandleHealthz(r); });
  http_.Route("GET", "/debug/ticks", [this](const obs::HttpRequest&) {
    // The flight recorder's retained per-tick span trees; "{}" when the
    // recorder is disabled (trace.recorder_ticks == 0).
    obs::HttpResponse r;
    r.content_type = "application/json";
    const obs::FlightRecorder* rec = server_->flight_recorder();
    r.body = rec != nullptr ? rec->ToJson() : "{}\n";
    return r;
  });
  obs::RegisterMetricsRoutes(&http_, server_->metrics());
}

IngestService::~IngestService() { Stop(); }

bool IngestService::Start(int port) {
  if (!http_.Start(port)) return false;
  GLP_LOG(Info) << "ingest service listening on :" << http_.port() << " ("
                << tenants_.num_tenants() << " tenants, "
                << server_->num_shards() << " shard(s))";
  return true;
}

void IngestService::Stop() { http_.Stop(); }

double IngestService::NowSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

obs::HttpResponse IngestService::HandleIngest(const obs::HttpRequest& req) {
  const double t0 = NowSeconds();

  // 1. Authenticate: every later counter is attributed to the tenant, so
  //    auth comes first and unauthenticated traffic is not attributed.
  const int tenant = tenants_.Authenticate(ExtractToken(req));
  if (tenant < 0) {
    return JsonError(401, "unknown or missing tenant token");
  }
  const auto finish = [&](const char* result, size_t edges, double lag_days,
                          obs::HttpResponse resp) {
    tenants_.Record(tenant, result, edges, NowSeconds(), lag_days,
                    NowSeconds() - t0);
    return resp;
  };

  // 2. Standby fencing at the front door: a hot standby only writes what
  //    its WalTailer replicates. 503 (not 429) — the client should fail
  //    over to the primary, not back off and retry here.
  if (standby_.load(std::memory_order_acquire)) {
    return finish("standby", 0, 0,
                  JsonError(503, "standby: not accepting writes "
                                 "(POST /v1/promote to activate)"));
  }

  // 3. Decode.
  if (req.body.empty()) {
    return finish("rejected", 0, 0, JsonError(400, "empty batch body"));
  }
  const std::string& ctype = req.header("content-type");
  Result<std::vector<graph::TimedEdge>> decoded =
      IsNdjsonContentType(ctype) ? DecodeNdjsonBatch(req.body)
      : IsBinaryContentType(ctype)
          ? DecodeBinaryBatch(req.body)
          : Result<std::vector<graph::TimedEdge>>(Status::InvalidArgument(
                "unsupported content type '" + ctype + "'"));
  if (!decoded.ok()) {
    return finish("rejected", 0, 0, JsonError(400, decoded.status().message()));
  }
  std::vector<graph::TimedEdge> batch = std::move(decoded).value();
  const size_t edges = batch.size();
  double batch_max_time = 0;
  for (const graph::TimedEdge& e : batch) {
    batch_max_time = std::max(batch_max_time, e.time);
  }

  // 4. Liveness: a stopped/degraded-to-dead server is 503, not 429 — the
  //    client should fail over, not back off (PR 4 semantics).
  if (!server_->running()) {
    obs::HttpResponse r = JsonError(503, "server not running");
    const Status err = server_->last_error();
    if (!err.ok()) {
      r.body = "{\"error\":\"server not running\",\"cause\":\"" +
               json::Escape(err.ToString()) + "\"}\n";
    }
    return finish("stopped", edges, 0, std::move(r));
  }

  // 5. Rate limiting: global bucket, then the tenant's own.
  double retry_after = 1.0;
  const Admission adm =
      tenants_.Admit(tenant, edges, NowSeconds(), &retry_after);
  if (adm != Admission::kOk) {
    obs::HttpResponse r = JsonError(
        429, adm == Admission::kThrottledGlobal ? "global rate limit"
                                                : "tenant rate limit");
    r.headers.emplace_back("Retry-After", RetryAfterValue(retry_after));
    return finish("throttled", edges, 0, std::move(r));
  }

  // 6. Hand to the server — non-blocking, so backpressure surfaces as a
  //    shed (429) instead of pinning this connection thread on the queue.
  //    The client's traceparent (when present) continues into the batch's
  //    IngestContext, and the wire-arrival stamp anchors the per-tenant
  //    freshness measurement (arrival -> confirmed-cluster publish).
  IngestContext ictx;
  obs::ParseTraceparent(req.header("traceparent"), &ictx.trace);
  ictx.arrival_seconds = obs::MonotonicSeconds();
  ictx.tenant = tenants_.policy(tenant).name;
  switch (server_->TryIngest(std::move(batch), std::move(ictx))) {
    case Server::Admit::kAccepted: {
      double lag_days = 0;
      {
        std::lock_guard<std::mutex> lk(head_mu_);
        lag_days = std::max(stream_head_ - batch_max_time, 0.0);
        stream_head_ = std::max(stream_head_, batch_max_time);
      }
      obs::HttpResponse r;
      r.content_type = "application/json";
      r.body = "{\"accepted\":" + std::to_string(edges) + "}\n";
      return finish("accepted", edges, lag_days, std::move(r));
    }
    case Server::Admit::kQueueFull: {
      obs::HttpResponse r = JsonError(429, "ingest queue full");
      r.headers.emplace_back("Retry-After", "1");
      return finish("shed", edges, 0, std::move(r));
    }
    case Server::Admit::kRejected:
      return finish("rejected", edges, 0,
                    JsonError(400, "batch failed validation"));
    case Server::Admit::kStopped:
    default:
      return finish("stopped", edges, 0,
                    JsonError(503, "server not running"));
  }
}

obs::HttpResponse IngestService::HandleStats(const obs::HttpRequest&) {
  obs::HttpResponse r;
  r.content_type = "application/json";
  r.body = server_->stats().ToJson();
  return r;
}

obs::HttpResponse IngestService::HandleHealthz(const obs::HttpRequest&) {
  if (server_->running()) {
    obs::HttpResponse r;
    r.body = "ok\n";
    return r;
  }
  return JsonError(503, "server not running");
}

}  // namespace glp::serve::net
