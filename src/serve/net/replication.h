// serve::net replication — hot-standby WAL shipping over the shared
// HTTP/1.1 core (DESIGN.md §4.13).
//
// The primary registers a ReplicationService next to its IngestService:
//
//   GET  /v1/wal?from=SEQ[&wait_ms=T][&max_bytes=N]
//        Raw WAL frames (the exact on-disk encoding, see serve/wal.h)
//        starting at sequence `from`, capped at max_bytes. When no frame
//        at `from` exists yet the handler long-polls up to wait_ms before
//        answering with an empty body. Every response carries
//        X-Glp-Wal-Epoch and X-Glp-Wal-Last-Seq so a follower can detect
//        fencing and measure how far behind it is.
//   POST /v1/promote
//        Fires the owner's promote callback (standby: stop tailing, bump
//        the fencing epoch, open for writes). Idempotent on an
//        already-active server. Answers {"epoch": E}.
//
// The standby runs a WalTailer: a thread that GETs /v1/wal from the
// primary, applies each frame through the normal ingest path with its
// primary-assigned (seq, epoch) — the server's WAL dedupes replays and
// fences deposed primaries — and publishes glp_serve_replica_lag_seconds.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/http.h"
#include "serve/server_iface.h"
#include "serve/wal.h"
#include "util/status.h"

namespace glp::serve::net {

/// Content type of GET /v1/wal responses (raw frame bytes).
inline constexpr char kWalContentType[] = "application/x-glp-wal";

/// Serves a server's WAL to followers and exposes promotion. Stateless
/// beyond the two borrowed pointers; register it on the ingest service's
/// HttpServer (or any obs::HttpServer) before Start().
class ReplicationService {
 public:
  /// `wal` not owned, may be null (routes answer 503 until a WAL exists —
  /// the server opens it on Start()/Restore, before the HTTP port binds in
  /// every in-repo wiring). `on_promote` runs on the connection thread;
  /// it returns the post-promotion fencing epoch.
  ReplicationService(const wal::Wal* wal,
                     std::function<Result<uint64_t>()> on_promote);

  /// Registers GET /v1/wal and POST /v1/promote. Call before server Start.
  void Register(obs::HttpServer* http);

  /// Hard ceiling on one GET /v1/wal response body; `max_bytes` above it
  /// is clamped.
  static constexpr size_t kMaxResponseBytes = 8u << 20;

 private:
  obs::HttpResponse HandleWal(const obs::HttpRequest& req) const;
  obs::HttpResponse HandlePromote(const obs::HttpRequest& req) const;

  const wal::Wal* wal_;
  std::function<Result<uint64_t>()> on_promote_;
};

/// Pulls WAL frames from a primary and feeds them to a local (standby)
/// server. Owns one background thread between Start() and Stop().
class WalTailer {
 public:
  struct Options {
    int primary_port = 0;       ///< loopback port of the primary's service
    int poll_wait_ms = 200;     ///< server-side long-poll budget per GET
    size_t max_bytes = 1u << 20;  ///< per-GET frame byte cap
    double retry_backoff_seconds = 0.05;  ///< sleep after a failed GET
  };

  /// `server` not owned; must outlive the tailer and have a WAL (the
  /// applied frames carry primary-assigned sequence numbers).
  WalTailer(Server* server, Options options);
  ~WalTailer();

  WalTailer(const WalTailer&) = delete;
  WalTailer& operator=(const WalTailer&) = delete;

  /// Starts tailing at `from_seq + 1` with local fencing epoch `epoch`
  /// (both from RestoreInfo / wal()->last_seq()). No-op if running.
  void Start(uint64_t from_seq, uint64_t epoch);

  /// Stops the thread. Safe to call repeatedly, from the promote path.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Highest sequence applied to (or deduped by) the local server.
  uint64_t last_applied_seq() const {
    return last_applied_seq_.load(std::memory_order_acquire);
  }
  /// First terminal error (fencing, decode failure); OK while healthy.
  Status last_error() const;

 private:
  void Loop(uint64_t start_seq, uint64_t epoch);
  void RecordError(const Status& st);

  Server* server_;
  Options options_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> last_applied_seq_{0};
  std::mutex lifecycle_mu_;  ///< serializes Start/Stop (promote vs shutdown)
  std::thread thread_;

  mutable std::mutex err_mu_;
  Status last_error_;
};

}  // namespace glp::serve::net
