// serve/net wire format — how an ingest batch travels in a POST body
// (DESIGN.md §4.11).
//
// Primary encoding (Content-Type: application/x-glp-batch), little-endian:
//
//   [u32 magic "GLPB"][u32 count][count x { u32 src, u32 dst, f64 time }]
//
// 16 bytes per edge, length-prefixed so the service can cross-check the
// declared count against Content-Length before touching the payload. The
// debuggability fallback (Content-Type: application/x-ndjson) is one JSON
// object per line — {"src":N,"dst":N,"time":F} — so a curl loop can drive
// the service without an encoder.
//
// Decoders validate everything (magic, count-vs-size, key set, numeric
// ranges) and return InvalidArgument rather than guessing: a malformed
// body becomes an HTTP 400, never a poisoned window.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "graph/sliding_window.h"
#include "util/status.h"

namespace glp::serve::net {

/// "GLPB" little-endian.
constexpr uint32_t kBatchMagic = 0x42504c47u;

constexpr char kBinaryContentType[] = "application/x-glp-batch";
constexpr char kNdjsonContentType[] = "application/x-ndjson";

/// Length-prefixed binary encoding (the wire's primary format).
std::string EncodeBinaryBatch(const std::vector<graph::TimedEdge>& batch);
Result<std::vector<graph::TimedEdge>> DecodeBinaryBatch(std::string_view body);

/// Newline-delimited JSON fallback: one {"src":N,"dst":N,"time":F} per
/// line (keys in any order; blank lines ignored).
std::string EncodeNdjsonBatch(const std::vector<graph::TimedEdge>& batch);
Result<std::vector<graph::TimedEdge>> DecodeNdjsonBatch(std::string_view body);

/// Dispatches on content type (binary when empty/unknown types are not
/// accepted — the service 400s them before calling this).
bool IsBinaryContentType(std::string_view content_type);
bool IsNdjsonContentType(std::string_view content_type);

}  // namespace glp::serve::net
