// serve::net::IngestService — the network front door of the serving layer
// (DESIGN.md §4.11).
//
// Wraps any serve::Server (1-shard or sharded — the interface hides it)
// behind an HTTP/1.1 ingest API on obs::HttpServer:
//
//   POST /v1/ingest   batch body (binary or ndjson, see wire.h), bearer
//                     token per tenant. Admission ladder:
//                       401 unknown/missing token
//                       503 standby mode (hot standby; POST /v1/promote)
//                       400 empty/undecodable body, invalid edges
//                       503 server not running (degraded/dead, PR 4)
//                       429 + Retry-After rate-limited (global or tenant
//                           token bucket) or backpressure shed (TryIngest
//                           kQueueFull — the bounded queue stays the last
//                           line of defense)
//                       200 {"accepted":N}
//   GET  /v1/stats    ServerStats JSON
//   GET  /healthz     "ok" while running, 503 once degraded/dead
//   GET  /debug/ticks flight-recorder span trees ("{}" when disabled)
//   GET  /metrics,/statz  the usual registry routes, co-hosted
//
// A `traceparent` header on POST /v1/ingest continues the client's trace
// into the batch's IngestContext (DESIGN.md §4.12); every accepted batch is
// stamped with its wire-arrival time so the per-tenant freshness SLO
// (glp_serve_freshness_seconds) measures arrival -> confirmed publish.
//
// The connection thread never blocks on the ingest queue: admission uses
// TryIngest, so shed pressure surfaces as 429 within one request's
// round-trip. Exactness rides on the Server contract — tick output is
// invariant to batch partitioning — so batches POSTed in stream order
// reproduce in-process ingest byte-for-byte.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/http.h"
#include "serve/net/tenant.h"
#include "serve/server_iface.h"
#include "util/status.h"

namespace glp::serve::net {

/// Formats a Retry-After header value: integral seconds on the wire,
/// rounded up (floored at 1) so a compliant client never comes back early
/// and gets throttled again.
std::string RetryAfterValue(double seconds);

class IngestService {
 public:
  struct Options {
    /// Largest accepted POST body (413 beyond).
    size_t max_batch_bytes = 1 << 20;
    /// Fleet-wide admission cap, edges/sec (0 = unlimited) + burst.
    double global_rate_edges_per_sec = 0;
    double global_burst_edges = 0;
    /// Concurrent connections the HTTP server carries.
    int max_connections = 128;
  };

  /// `server` not owned; must be Start()ed by the caller and outlive the
  /// service. Tenant QoS metrics land in server->metrics().
  IngestService(Server* server, std::vector<TenantPolicy> tenants);
  IngestService(Server* server, std::vector<TenantPolicy> tenants,
                Options options);
  ~IngestService();

  IngestService(const IngestService&) = delete;
  IngestService& operator=(const IngestService&) = delete;

  /// Binds 0.0.0.0:`port` (0 = ephemeral) and serves. False on bind error.
  bool Start(int port);
  void Stop();
  int port() const { return http_.port(); }

  TenantRegistry* tenants() { return &tenants_; }

  /// Standby mode: POST /v1/ingest answers 503 ("standby — not accepting
  /// writes") while set. A hot standby serves reads (/v1/stats, /metrics,
  /// /v1/wal) but only its WalTailer writes, until promotion clears this.
  void SetStandby(bool standby) {
    standby_.store(standby, std::memory_order_release);
  }
  bool standby() const { return standby_.load(std::memory_order_acquire); }

  /// Co-hosted route registration (e.g. a ReplicationService's /v1/wal and
  /// /v1/promote). Must run before Start() — the underlying HttpServer
  /// freezes its route table when it binds.
  obs::HttpServer* http() { return &http_; }

 private:
  obs::HttpResponse HandleIngest(const obs::HttpRequest& req);
  obs::HttpResponse HandleStats(const obs::HttpRequest& req);
  obs::HttpResponse HandleHealthz(const obs::HttpRequest& req);
  double NowSeconds() const;

  Server* server_;
  TenantRegistry tenants_;
  obs::HttpServer http_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> standby_{false};

  /// Stream head over accepted batches — the reference point for
  /// per-tenant ingest-lag attribution.
  std::mutex head_mu_;
  double stream_head_ = 0;
};

}  // namespace glp::serve::net
