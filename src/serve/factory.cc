// MakeServer — the one place shard count picks an implementation.

#include <memory>
#include <utility>

#include "serve/server.h"
#include "serve/server_iface.h"
#include "serve/sharded_server.h"

namespace glp::serve {

std::unique_ptr<Server> MakeServer(ServerConfig config, int num_shards) {
  if (num_shards <= 1) {
    return std::make_unique<StreamServer>(std::move(config));
  }
  return std::make_unique<ShardedStreamServer>(std::move(config), num_shards);
}

}  // namespace glp::serve
