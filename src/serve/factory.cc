// MakeServer — the one place shard count picks an implementation.

#include <memory>
#include <utility>

#include "serve/server.h"
#include "serve/server_iface.h"
#include "serve/sharded_server.h"
#include "util/logging.h"

namespace glp::serve {

std::unique_ptr<Server> MakeServer(ServerConfig config, int num_shards) {
  if (num_shards <= 0) {
    // A non-positive count is a caller bug (a miscomputed fleet size, an
    // unparsed flag). Silently serving one shard would mask it; fail
    // loudly instead.
    GLP_LOG(Error) << "MakeServer: num_shards must be >= 1, got "
                   << num_shards;
    return nullptr;
  }
  if (num_shards == 1) {
    return std::make_unique<StreamServer>(std::move(config));
  }
  return std::make_unique<ShardedStreamServer>(std::move(config), num_shards);
}

}  // namespace glp::serve
