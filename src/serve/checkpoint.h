// Crash-consistent checkpoint/restore for the streaming server
// (DESIGN.md §4.8). A checkpoint captures everything the detection thread
// needs to resume a stream mid-flight with output identical to an
// uninterrupted run: the window's edge stream, the tick schedule and
// counters, and the previous tick's warm-start / confirmed-cluster state.
//
// Snapshots are atomic: the file is written to "<path>.tmp" and renamed
// into place, so a crash mid-save leaves the previous checkpoint intact.
// Every file carries a magic, a version, and a whole-payload checksum;
// Load rejects truncation and corruption with IoError, and
// LatestCheckpoint skips unreadable files so a torn newest checkpoint
// falls back to the one before it.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/sliding_window.h"
#include "graph/types.h"
#include "util/status.h"

namespace glp::serve {

/// Complete detection-thread state at a tick boundary.
struct CheckpointData {
  /// Ticks executed so far (the next tick's TickResult::tick).
  int64_t tick = 0;
  /// Whether the absolute tick grid has been anchored, and the next due
  /// boundary when it has.
  bool tick_schedule_primed = false;
  double next_tick_end = 0;
  /// Newest timestamp the server had accepted — restored so ingest-lag
  /// accounting continues seamlessly.
  double ingested_max_time = 0;

  /// The full appended edge stream, canonical order. Replays resume at
  /// edge index edges.size() of the canonically-sorted source stream.
  std::vector<graph::TimedEdge> edges;

  /// Previous tick's warm-start state (empty/false on cold boundaries).
  bool have_prev = false;
  std::vector<graph::VertexId> prev_l2g;
  std::vector<graph::Label> prev_labels;
  /// Confirmed-cluster sets of the previous tick (sorted member lists) —
  /// needed so post-restore new/expired diffs match the uninterrupted run.
  std::vector<std::vector<graph::VertexId>> prev_confirmed;
};

/// Serializes `data` to `path` via write-temp-then-rename. Threads the
/// "serve.checkpoint" failpoint. Never leaves a torn file at `path`.
Status SaveCheckpoint(const std::string& path, const CheckpointData& data);

/// Reads a checkpoint written by SaveCheckpoint, validating magic, version,
/// structure, and checksum.
Result<CheckpointData> LoadCheckpoint(const std::string& path);

/// Filename "checkpoint-<tick padded to 12>.ckpt" used by the server's
/// periodic snapshots inside checkpoint_dir.
std::string CheckpointFileName(int64_t tick);

/// Newest *loadable* checkpoint in `dir` (highest tick whose file passes
/// validation). NotFound when the directory holds none.
Result<std::string> LatestCheckpoint(const std::string& dir);

/// Deletes all but the `keep` newest checkpoint files in `dir` (by name
/// order). Best-effort; returns the first deletion error, if any.
Status PruneCheckpoints(const std::string& dir, int keep);

}  // namespace glp::serve
