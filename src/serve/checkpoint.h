// Crash-consistent checkpoint/restore for the streaming server
// (DESIGN.md §4.8). A checkpoint captures everything the detection thread
// needs to resume a stream mid-flight with output identical to an
// uninterrupted run: the window's edge stream, the tick schedule and
// counters, and the previous tick's warm-start / confirmed-cluster state.
//
// Snapshots are atomic: the file is written to "<path>.tmp" and renamed
// into place, so a crash mid-save leaves the previous checkpoint intact.
// Every file carries a magic, a version, and a whole-payload checksum;
// Load rejects truncation and corruption with IoError, and
// LatestCheckpoint skips unreadable files so a torn newest checkpoint
// falls back to the one before it.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/sliding_window.h"
#include "graph/types.h"
#include "pipeline/partition.h"
#include "util/status.h"

namespace glp::serve {

/// Complete detection-thread state at a tick boundary.
struct CheckpointData {
  /// Ticks executed so far (the next tick's TickResult::tick).
  int64_t tick = 0;
  /// Whether the absolute tick grid has been anchored, and the next due
  /// boundary when it has.
  bool tick_schedule_primed = false;
  double next_tick_end = 0;
  /// Newest timestamp the server had accepted — restored so ingest-lag
  /// accounting continues seamlessly.
  double ingested_max_time = 0;

  /// The full appended edge stream, canonical order. Replays resume at
  /// edge index edges.size() of the canonically-sorted source stream.
  std::vector<graph::TimedEdge> edges;

  /// Previous tick's warm-start state (empty/false on cold boundaries).
  bool have_prev = false;
  std::vector<graph::VertexId> prev_l2g;
  std::vector<graph::Label> prev_labels;
  /// Confirmed-cluster sets of the previous tick (sorted member lists) —
  /// needed so post-restore new/expired diffs match the uninterrupted run.
  std::vector<std::vector<graph::VertexId>> prev_confirmed;

  /// Incremental-serving anchors (format v2; empty/false when the server
  /// was not running incrementally): entity-sorted parallel arrays mapping
  /// each window entity to its component's label anchor entity, which is
  /// how clean components keep their labels across a kill/restore. The
  /// union-find itself is not serialized — restore rebuilds it
  /// deterministically from `edges` (RebuildClean), so the pair round-trips
  /// the complete persistent incremental state. v1 files load with these
  /// left empty (first post-restore tick rebuilds from scratch).
  bool has_incremental = false;
  std::vector<graph::VertexId> inc_entities;
  std::vector<graph::VertexId> inc_anchors;

  /// WAL position this snapshot covers (format v3; 0 when the server ran
  /// without a WAL or the file predates v3): the highest WAL sequence
  /// number whose batch is included in `edges`. Recovery replays WAL
  /// frames with seq > wal_seq on top of the restored state, which makes
  /// the restart byte-identical to an uninterrupted run instead of losing
  /// everything since the snapshot.
  uint64_t wal_seq = 0;
  /// Fencing epoch at snapshot time (serve/wal.h). Restore raises the
  /// reopened WAL's epoch to at least this, so a checkpoint taken after a
  /// promotion keeps fencing a deposed primary even if the promoted
  /// epoch's segments were since pruned.
  uint64_t wal_epoch = 0;
};

/// Serializes `data` to `path` via write-temp-then-rename. Threads the
/// "serve.checkpoint" failpoint. Never leaves a torn file at `path`.
Status SaveCheckpoint(const std::string& path, const CheckpointData& data);

/// Reads a checkpoint written by SaveCheckpoint, validating magic, version,
/// structure, and checksum.
Result<CheckpointData> LoadCheckpoint(const std::string& path);

/// Filename "checkpoint-<tick padded to 12>.ckpt" used by the server's
/// periodic snapshots inside checkpoint_dir.
std::string CheckpointFileName(int64_t tick);

/// Newest *loadable* checkpoint in `dir` (highest tick whose file passes
/// validation). NotFound when the directory holds none.
Result<std::string> LatestCheckpoint(const std::string& dir);

/// Deletes all but the `keep` newest *loadable* checkpoint files in `dir`
/// (by name order). Unreadable/torn files never occupy keep slots and are
/// always deleted, so a directory of garbage converges to empty instead of
/// shielding it; keep <= 0 deletes every checkpoint file. Best-effort;
/// returns the first deletion error, if any.
Status PruneCheckpoints(const std::string& dir, int keep);

/// WAL-aware variant: when `wal_dir` holds any WAL segments, at least one
/// loadable checkpoint is retained regardless of `keep` — the newest
/// loadable file is the replay base those segments depend on, and deleting
/// it would turn an exact recovery into a full-stream replay (or a data
/// loss if early segments were already pruned).
Status PruneCheckpoints(const std::string& dir, int keep,
                        const std::string& wal_dir);

// ---------------------------------------------------------------------------
// Sharded-fleet checkpoints (serve::ShardedStreamServer)
// ---------------------------------------------------------------------------
//
// A sharded checkpoint is N+2 files: one CheckpointData per shard (that
// shard's partitioned window, mirrors included), one coordinator
// CheckpointData (tick schedule, confirmed-cluster set, warm anchors), and
// a manifest naming them all. The manifest is written *last* via
// temp-then-rename, which makes the fleet snapshot atomic: a crash between
// shard files and manifest leaves the previous manifest — and therefore the
// previous complete file set — authoritative. Restore is all-or-nothing:
// the newest manifest whose coordinator and every shard file validate wins,
// so losing or corrupting a single shard file falls the whole fleet back to
// the previous complete checkpoint instead of restoring a torn mix.

/// Names the files of one fleet-wide snapshot (all relative to the
/// checkpoint directory holding the manifest).
struct ShardManifest {
  int64_t tick = 0;
  int num_shards = 0;
  /// Fencing epoch at snapshot time (manifest format v2; 0 for v1 files).
  uint64_t epoch = 0;
  std::string coord_file;
  std::vector<std::string> shard_files;  ///< size num_shards, shard order

  /// Partition map the fleet routed under at snapshot time (manifest
  /// format v3): version plus the explicit entity→part override table.
  /// v1/v2 manifests load with version 1 and no overrides — the default
  /// hash map over num_shards, which is exactly the rule those fleets
  /// routed by, so old checkpoints restore identically.
  uint64_t map_version = 1;
  std::vector<graph::VertexId> map_override_keys;
  std::vector<int32_t> map_override_parts;

  /// The deserialized map as a routable PartitionMap over num_shards.
  pipeline::PartitionMap PartitionMapOf() const;
};

/// A fully loaded and validated fleet snapshot.
struct ShardedCheckpoint {
  ShardManifest manifest;
  CheckpointData coord;
  std::vector<CheckpointData> shards;
};

std::string ShardManifestFileName(int64_t tick);
std::string ShardCheckpointFileName(int shard, int64_t tick);
std::string CoordCheckpointFileName(int64_t tick);

/// Serializes the manifest via write-temp-then-rename. Call only after
/// every file it names is durably in place.
Status SaveShardManifest(const std::string& path, const ShardManifest& m);

/// Reads and validates a manifest file (magic, version, checksum).
Result<ShardManifest> LoadShardManifest(const std::string& path);

/// Loads the complete fleet snapshot a manifest names, validating every
/// file; any unloadable member fails the whole load (IoError).
Result<ShardedCheckpoint> LoadShardedCheckpoint(
    const std::string& manifest_path);

/// Newest *fully loadable* fleet snapshot in `dir`: manifests are tried
/// tick-descending and the first whose entire file set validates wins.
Result<ShardedCheckpoint> LatestShardedCheckpoint(const std::string& dir);

/// Deletes manifests beyond the `keep` newest, plus every shard/coord file
/// belonging to a deleted manifest's tick. Best-effort.
Status PruneShardCheckpoints(const std::string& dir, int keep);

/// WAL-aware variant (same contract as the single-server overload): keeps
/// at least the newest manifest while `wal_dir` holds WAL segments.
Status PruneShardCheckpoints(const std::string& dir, int keep,
                             const std::string& wal_dir);

// ---------------------------------------------------------------------------
// Shape-independent (portable) checkpoint view — DESIGN.md §4.14
// ---------------------------------------------------------------------------

/// A checkpoint re-expressed in the flat single-server representation,
/// regardless of the fleet shape that wrote it. This is what makes
/// checkpoints portable across fleet sizes: any server can consume `data`
/// by routing `data.edges` under its own partition map.
struct PortableCheckpoint {
  /// Flat-form state. For sharded sources, `edges` is the exact global
  /// canonical stream — each shard window filtered to the edges that
  /// shard *owns* under the manifest's partition map (mirrors dropped),
  /// then merged back into canonical order, which reproduces the
  /// single-server stream byte-identically. Warm-start state is converted
  /// from the coordinator's entity→anchor pairs to the flat
  /// prev_l2g/prev_labels encoding; the anchor function both encodings
  /// induce is identical. wal_epoch folds in the manifest fencing epoch.
  CheckpointData data;
  /// Fleet shape that wrote the snapshot (1 for flat files).
  int source_shards = 1;
};

/// Loads the newest checkpoint under `path_or_dir` as a portable view.
/// A directory may hold flat checkpoints, sharded manifests, or (after a
/// history of resizes through one shard) both — the loadable snapshot
/// with the highest tick wins. An explicit file path loads that file,
/// treating ".smf" names as sharded manifests. NotFound when the
/// directory holds no loadable checkpoint of either format; corrupt
/// explicit files fail with IoError.
Result<PortableCheckpoint> LoadPortableCheckpoint(
    const std::string& path_or_dir);

}  // namespace glp::serve
