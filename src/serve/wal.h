#pragma once

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "graph/sliding_window.h"
#include "util/status.h"

namespace glp::serve::wal {

/// \file
/// Durable write-ahead log of accepted ingest batches.
///
/// Every batch a Server admits is assigned a monotonic sequence number and
/// appended here *before* it is enqueued for detection, so a crash between
/// checkpoints loses nothing: recovery is RestoreFromCheckpoint + replay of
/// every frame with seq > the checkpoint's recorded sequence. Frames also
/// carry a fencing epoch (bumped on standby promotion) so a deposed
/// primary's writes are rejected, and a wall-clock stamp so a standby can
/// report replication lag.
///
/// On-disk layout: a directory of segment files named
/// `wal-<start_seq:020>.seg`, each a back-to-back run of frames:
///
///   [u32 payload_len][payload][u64 fnv1a(payload)]
///   payload = [u64 seq][u64 epoch][f64 wall_seconds]
///             [u32 num_edges][num_edges x {u32 src, u32 dst, f64 time}]
///
/// The checksum is the same FNV-1a used by serve/checkpoint. Sequence
/// numbers start at 1 and are contiguous across segments; the epoch starts
/// at 1 and only ever grows. A torn final frame (crash mid-append) is
/// truncated away on Open; a torn frame in a *non-final* segment is real
/// corruption and fails Open with kIoError.

/// One logged batch. `wall_seconds` is the primary's wall clock at append
/// time; a standby subtracts it from its own clock for the lag gauge.
struct WalFrame {
  uint64_t seq = 0;
  uint64_t epoch = 0;
  double wall_seconds = 0.0;
  std::vector<graph::TimedEdge> edges;
};

/// Encodes one frame (length prefix + payload + checksum trailer). The
/// same bytes are served verbatim over GET /v1/wal, so this is also the
/// replication wire format.
std::string EncodeFrame(const WalFrame& frame);

enum class FrameParse {
  kFrame,  ///< a complete, checksum-valid frame was decoded; *pos advanced
  kEnd,    ///< *pos is exactly at the end of the buffer
  kTorn,   ///< trailing bytes do not form a complete valid frame
};

/// Decodes the frame starting at *pos. On kFrame, fills `out` and advances
/// *pos past the frame; on kEnd/kTorn, *pos is left at the frame start.
FrameParse ParseFrame(std::string_view buf, size_t* pos, WalFrame* out);

/// `wal-<start_seq:020>.seg` — start_seq is the first frame the segment
/// holds (20 decimal digits so lexicographic order == numeric order).
std::string SegmentFileName(uint64_t start_seq);

/// Inverse of SegmentFileName; false if `name` is not a segment name.
bool ParseSegmentFileName(const std::string& name, uint64_t* start_seq);

/// True if `dir` exists and contains at least one WAL segment file.
/// Checkpoint pruning uses this to decide whether a checkpoint must be
/// retained as the replay base for surviving segments.
bool WalDirHasSegments(const std::string& dir);

/// Group-commit and rotation policy.
struct WalOptions {
  /// fsync after every N appends (1 = sync every batch). Appends between
  /// syncs are still flushed to the OS (visible to readers) but a power
  /// loss may lose them; a plain process crash does not.
  int fsync_every_batches = 1;
  /// Also fsync when this much wall time has passed since the last sync
  /// and unsynced appends exist (checked at append). <= 0 disables the
  /// time trigger.
  double fsync_interval_ms = 0.0;
  /// Rotate to a new segment once the active one exceeds this size.
  uint64_t segment_max_bytes = 16ull << 20;
};

struct WalStats {
  uint64_t last_seq = 0;
  uint64_t epoch = 0;
  uint64_t appends = 0;         ///< frames appended this process
  uint64_t fsyncs = 0;          ///< fsync calls this process
  uint64_t bytes_appended = 0;  ///< frame bytes written this process
  uint64_t segments = 0;        ///< live segment files
  uint64_t truncated_bytes = 0; ///< torn tail dropped at Open
  uint64_t pruned_segments = 0; ///< segments deleted by PruneThrough
};

/// Thread-safe append-only log. All methods may be called concurrently;
/// appends are serialized internally so sequence order equals call order
/// (the Server additionally holds its own lock across append+enqueue so
/// WAL order matches queue order exactly).
class Wal {
 public:
  /// Opens (creating the directory if needed) and recovers: scans
  /// segments in order, truncates a torn final frame, and resumes the
  /// sequence/epoch after the last durable frame. Fresh logs start at
  /// seq 0 (next append = 1), epoch 1.
  static Result<std::unique_ptr<Wal>> Open(const std::string& dir,
                                           const WalOptions& opts);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends `edges` as the next sequence number and returns it. Durable
  /// per the fsync policy; flushed to the OS unconditionally. Batches
  /// whose encoded size would overflow the u32 frame length prefix
  /// (~268M edges) are rejected with kInvalidArgument.
  Result<uint64_t> Append(const std::vector<graph::TimedEdge>& edges,
                          double wall_seconds);

  /// Replication apply: appends a frame with its primary-assigned seq and
  /// epoch. Returns kAlreadyExists if frame.seq <= last_seq (duplicate —
  /// callers treat this as success), kFailedPrecondition-style
  /// kInvalidArgument if frame.epoch is below the local epoch (fenced:
  /// the sender is a deposed primary) or if frame.seq would leave a gap.
  Status AppendFrame(const WalFrame& frame);

  /// Flush + fsync now, regardless of policy.
  Status Sync();

  /// Promotion fencing: bumps the epoch, rotates to a fresh segment so
  /// the new epoch starts on a segment boundary (a no-op if the active
  /// segment is already empty), and syncs. Returns the new epoch.
  /// Subsequent AppendFrame calls carrying the old epoch are rejected.
  Result<uint64_t> BumpEpoch();

  /// Raises the epoch to at least `epoch` (used when a checkpoint records
  /// a newer epoch than the surviving segments). No-op if already >=.
  Status EnsureEpochAtLeast(uint64_t epoch);

  /// Reads frames with seq >= from_seq, in order. If max_bytes > 0, stops
  /// after the first frame that brings the encoded total over the limit
  /// (always returns at least one available frame).
  Result<std::vector<WalFrame>> ReadFrom(uint64_t from_seq,
                                         size_t max_bytes = 0) const;

  /// Like ReadFrom but returns the raw encoded bytes (what GET /v1/wal
  /// serves). `last_seq_out`, if non-null, gets the seq of the final
  /// frame included (0 if none).
  Result<std::string> ReadRawFrom(uint64_t from_seq, size_t max_bytes,
                                  uint64_t* last_seq_out) const;

  /// Deletes segments whose every frame has seq <= up_to_seq. The active
  /// segment is never deleted. Called after a checkpoint covering
  /// up_to_seq commits.
  Status PruneThrough(uint64_t up_to_seq);

  /// Blocks until last_seq() >= seq or the timeout elapses. Long-poll
  /// support for GET /v1/wal.
  bool WaitForSeq(uint64_t seq, double timeout_seconds) const;

  uint64_t last_seq() const;
  uint64_t epoch() const;
  const std::string& dir() const { return dir_; }
  WalStats stats() const;

 private:
  Wal(std::string dir, const WalOptions& opts);

  Status RecoverLocked();
  Status OpenActiveLocked(uint64_t start_seq, bool truncate_existing);
  Status RotateLocked();
  Status AppendLocked(const WalFrame& frame);
  Status SyncLocked();

  std::string dir_;
  WalOptions opts_;

  mutable std::mutex mu_;
  mutable std::condition_variable seq_cv_;
  std::FILE* active_ = nullptr;
  std::string active_path_;
  uint64_t active_start_seq_ = 1;
  uint64_t active_bytes_ = 0;
  /// Sorted start_seqs of all live segments (last == active).
  std::vector<uint64_t> segment_starts_;
  uint64_t next_seq_ = 1;
  uint64_t epoch_ = 1;
  int unsynced_appends_ = 0;
  double last_sync_seconds_ = 0.0;  // MonotonicSeconds at last fsync
  WalStats stats_;
};

}  // namespace glp::serve::wal
