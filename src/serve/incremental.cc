#include "serve/incremental.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

namespace glp::serve {

using graph::TimedEdge;
using graph::VertexId;
using graph::WindowDelta;

void IncrementalTracker::NewEpoch() {
  if (++epoch_ == 0) {  // stamp wrap
    std::fill(mark_epoch_.begin(), mark_epoch_.end(), 0u);
    std::fill(seen_epoch_.begin(), seen_epoch_.end(), 0u);
    epoch_ = 1;
  }
  dirty_roots_.clear();
}

void IncrementalTracker::EnsureUniverse(VertexId max_entity) {
  const size_t need = static_cast<size_t>(max_entity) + 1;
  if (parent_.size() >= need) return;
  const size_t old = parent_.size();
  parent_.resize(need);
  for (size_t v = old; v < need; ++v) parent_[v] = static_cast<VertexId>(v);
  deg_.resize(need, 0);
  members_.resize(need);
  mark_epoch_.resize(need, 0);
  seen_epoch_.resize(need, 0);
}

VertexId IncrementalTracker::Find(VertexId v) {
  while (parent_[v] != v) {
    parent_[v] = parent_[parent_[v]];  // path halving
    v = parent_[v];
  }
  return v;
}

VertexId IncrementalTracker::Union(VertexId a, VertexId b) {
  VertexId ra = Find(a), rb = Find(b);
  if (ra == rb) return ra;
  if (members_[ra].size() < members_[rb].size()) std::swap(ra, rb);
  parent_[rb] = ra;
  members_[ra].insert(members_[ra].end(), members_[rb].begin(),
                      members_[rb].end());
  members_[rb].clear();
  members_[rb].shrink_to_fit();
  if (Marked(rb)) Mark(ra);
  return ra;
}

void IncrementalTracker::Touch(VertexId e) {
  if (deg_[e] == 0) {
    parent_[e] = e;
    members_[e].assign(1, e);
  }
  ++deg_[e];
}

bool IncrementalTracker::IsDirty(VertexId entity) {
  if (!InWindow(entity)) return true;
  return Marked(Find(entity));
}

void IncrementalTracker::Canonicalize(
    const std::vector<VertexId>& candidates) {
  for (VertexId e : candidates) {
    if (deg_[e] == 0) continue;  // evicted after being marked
    const VertexId r = Find(e);
    if (!Marked(r) || seen_epoch_[r] == epoch_) continue;
    seen_epoch_[r] = epoch_;
    dirty_roots_.push_back(r);
  }
}

void IncrementalTracker::BeginTick() {
  NewEpoch();
  candidates_.clear();
}

void IncrementalTracker::Expire(const std::vector<TimedEdge>& edges,
                                const WindowDelta& delta) {
  // Drop endpoint degrees and collect the *old* roots of every component
  // that lost an edge.
  std::unordered_set<VertexId> affected_roots;
  for (size_t i = delta.expired_begin; i < delta.expired_end; ++i) {
    const TimedEdge& e = edges[i];
    --deg_[e.src];
    --deg_[e.dst];
    affected_roots.insert(Find(e.src));
    affected_roots.insert(Find(e.dst));
  }

  // Reset every affected component to singletons, dropping members whose
  // degree hit zero (evicted from the window). A later Expire over another
  // window re-collects the resulting singletons if it evicts them too.
  for (VertexId r : affected_roots) {
    std::vector<VertexId> mem = std::move(members_[r]);
    members_[r].clear();
    for (VertexId e : mem) {
      parent_[e] = e;
      if (deg_[e] > 0) {
        members_[e].assign(1, e);
        Mark(e);
        candidates_.push_back(e);
      } else {
        members_[e].clear();
        members_[e].shrink_to_fit();
      }
    }
  }
}

void IncrementalTracker::Rescan(const std::vector<TimedEdge>& edges,
                                const WindowDelta& delta) {
  // Re-derive the affected components' connectivity from their retained
  // edges. A retained edge's endpoints shared a component before the
  // delta, so checking one endpoint's mark suffices; edges of untouched
  // components are skipped without a Find.
  for (size_t i = delta.retained_begin; i < delta.retained_end; ++i) {
    const TimedEdge& e = edges[i];
    if (Marked(e.src)) Union(e.src, e.dst);
  }
}

void IncrementalTracker::Append(const std::vector<TimedEdge>& edges,
                                const WindowDelta& delta) {
  VertexId mx = 0;
  for (size_t i = delta.appended_begin; i < delta.appended_end; ++i) {
    mx = std::max({mx, edges[i].src, edges[i].dst});
  }
  EnsureUniverse(mx);
  // Union in place, dirtying every component an appended edge touches
  // (including previously-clean ones it merges in).
  for (size_t i = delta.appended_begin; i < delta.appended_end; ++i) {
    const TimedEdge& e = edges[i];
    Touch(e.src);
    Touch(e.dst);
    const VertexId r = Union(e.src, e.dst);
    Mark(r);
    candidates_.push_back(r);
  }
}

void IncrementalTracker::FinishTick() {
  Canonicalize(candidates_);
  candidates_.clear();
}

void IncrementalTracker::ApplyDelta(const std::vector<TimedEdge>& edges,
                                    const WindowDelta& delta) {
  BeginTick();
  // Expired edges index the pre-advance window, whose entities are already
  // in the universe; Append grows it for genuinely new entities.
  Expire(edges, delta);
  Rescan(edges, delta);
  Append(edges, delta);
  FinishTick();
}

void IncrementalTracker::BeginRebuild() {
  NewEpoch();
  candidates_.clear();
  std::fill(deg_.begin(), deg_.end(), 0);
  for (auto& m : members_) m.clear();
}

void IncrementalTracker::AddWindowRange(const std::vector<TimedEdge>& edges,
                                        size_t lo, size_t hi) {
  VertexId mx = 0;
  for (size_t i = lo; i < hi; ++i) {
    mx = std::max({mx, edges[i].src, edges[i].dst});
  }
  EnsureUniverse(mx);
  for (size_t i = lo; i < hi; ++i) {
    const TimedEdge& e = edges[i];
    Touch(e.src);
    Touch(e.dst);
    candidates_.push_back(Union(e.src, e.dst));
  }
}

void IncrementalTracker::FinishRebuild(bool mark_all_dirty) {
  if (mark_all_dirty) {
    for (VertexId e : candidates_) {
      if (deg_[e] > 0) Mark(Find(e));
    }
    Canonicalize(candidates_);
  }
  candidates_.clear();
}

void IncrementalTracker::RebuildAll(const std::vector<TimedEdge>& edges,
                                    size_t lo, size_t hi) {
  BeginRebuild();
  AddWindowRange(edges, lo, hi);
  FinishRebuild(/*mark_all_dirty=*/true);
}

void IncrementalTracker::RebuildClean(const std::vector<TimedEdge>& edges,
                                      size_t lo, size_t hi) {
  BeginRebuild();
  AddWindowRange(edges, lo, hi);
  FinishRebuild(/*mark_all_dirty=*/false);
}

void IncrementalTracker::ExportDirty(size_t universe,
                                     std::vector<uint8_t>* flags) {
  flags->assign(universe, 1);
  const size_t n = std::min(universe, deg_.size());
  for (size_t e = 0; e < n; ++e) {
    if (deg_[e] <= 0) continue;
    (*flags)[e] =
        Marked(Find(static_cast<VertexId>(e))) ? uint8_t{1} : uint8_t{0};
  }
}

}  // namespace glp::serve
