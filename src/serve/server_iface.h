// serve::Server — the serving layer's one polymorphic surface (PR 7 API
// redesign). StreamServer (1 shard) and ShardedStreamServer (N shards)
// implement it; the replay tool, the checkpoint plumbing, and the network
// ingest frontend (serve/net/) all program against this interface, so shard
// count is a construction-time choice (MakeServer) rather than something
// every consumer special-cases.
//
// Contract highlights shared by every implementation:
//  - Ticks fire on the absolute grid k * tick.every_days once ingested data
//    crosses a boundary; output is invariant to how the stream is cut into
//    batches (the network path leans on this for its exactness guarantee).
//  - Ingest() blocks on a full queue (backpressure); TryIngest() returns
//    kQueueFull instead, which the net frontend converts into 429 +
//    Retry-After (admission control never blocks a connection thread on a
//    queue it does not own).
//  - A fatal tick error kills the detection loop: running() flips false,
//    blocked producers wake with Ingest() == false, last_error() holds the
//    first failure.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "graph/sliding_window.h"
#include "obs/trace.h"
#include "pipeline/pipeline.h"
#include "serve/config.h"
#include "util/status.h"

namespace glp::serve {

namespace wal {
class Wal;
}

/// Wire-to-publish context riding alongside one ingest batch (DESIGN.md
/// §4.12): the client's trace context from `traceparent`, the arrival
/// stamp the freshness SLO measures from, and the tenant the measurement
/// is attributed to. A default-constructed IngestContext (in-process
/// callers) is untraced and unstamped — no freshness is recorded for it.
struct IngestContext {
  obs::SpanContext trace;
  /// obs::MonotonicSeconds() at wire arrival; negative = unstamped.
  double arrival_seconds = -1;
  /// Label on glp_serve_freshness_seconds; empty renders as "default".
  std::string tenant;

  // Replication-internal (serve/net/replication.h). Nonzero wal_seq means
  // this batch already carries a primary-assigned WAL position: the
  // server's WAL appends it at exactly that sequence instead of assigning
  // a fresh one, suppresses it as a duplicate if already logged, and
  // rejects it when wal_epoch is behind the local fencing epoch (a
  // deposed primary's write). Normal ingest leaves all three zero.
  uint64_t wal_seq = 0;
  uint64_t wal_epoch = 0;
  /// Primary's wall clock at original append — feeds the standby's
  /// glp_serve_replica_lag_seconds gauge.
  double wal_wall_seconds = 0;
};

/// One detection tick's output, published to subscribers.
struct TickResult {
  int64_t tick = 0;
  double window_start = 0;
  double window_end = 0;
  /// Whether this tick's LP was warm-started from the previous tick.
  bool warm = false;

  /// Full pipeline output (clusters, metrics, LP cost accounting).
  pipeline::PipelineResult detection;

  /// Confirmed-cluster diff vs the previous tick, as sorted global-id
  /// member lists: clusters newly confirmed this tick, and previously
  /// confirmed clusters that disappeared.
  std::vector<std::vector<graph::VertexId>> new_confirmed;
  std::vector<std::vector<graph::VertexId>> expired_confirmed;

  /// Host wall-clock of the whole tick (window advance + LP + extraction).
  double tick_wall_seconds = 0;
  /// Newest ingested timestamp minus this window's end: how far detection
  /// trails the stream head.
  double ingest_lag_days = 0;

  /// The warm-start initial labels used (only when
  /// ServerConfig::record_warm_labels; empty on cold ticks).
  std::vector<graph::Label> warm_labels;
};

/// Aggregate serving statistics — a point-in-time view assembled from the
/// server's metric registry (the registry is the source of truth; this
/// struct exists for programmatic consumers and the JSON dump).
struct ServerStats {
  int64_t ticks = 0;
  int64_t warm_ticks = 0;
  int64_t cold_ticks = 0;
  int64_t batches_ingested = 0;
  int64_t edges_ingested = 0;
  /// Times Ingest() had to block on a full queue.
  int64_t ingest_blocked = 0;
  size_t queue_peak = 0;

  // Resilience counters (see ResiliencePolicy).
  int64_t batches_rejected = 0;       ///< failed validation or injected fault
  int64_t ticks_shed = 0;             ///< overdue boundaries coalesced away
  int64_t degraded_ticks = 0;         ///< ran with the LP iteration cap
  int64_t deadline_overruns = 0;      ///< ticks exceeding the deadline
  int64_t tick_retries = 0;           ///< transient-failure retry attempts
  int64_t ticks_failed = 0;           ///< ticks abandoned after all retries
  int64_t engine_fallbacks = 0;       ///< retries on the fallback engine
  int64_t warm_fallbacks = 0;         ///< retries that dropped warm start
  int64_t cold_refresh_deferred = 0;  ///< refreshes postponed under pressure
  int64_t checkpoints_written = 0;
  int64_t checkpoint_failures = 0;

  // Incremental serving (TickPolicy::incremental).
  int64_t reused_clusters = 0;        ///< cluster records reused verbatim
  int64_t incremental_rebuilds = 0;   ///< ticks that fell back to a rebuild
  int64_t last_dirty_components = 0;  ///< dirty components, last tick

  double tick_p50_seconds = 0;
  double tick_p99_seconds = 0;
  double tick_max_seconds = 0;
  double warm_avg_iterations = 0;
  double cold_avg_iterations = 0;
  double last_ingest_lag_days = 0;

  std::string ToJson() const;
};

/// \brief Abstract streaming detection server.
///
/// Producers feed timestamped edge batches (Ingest/TryIngest, both
/// thread-safe); a detection thread appends them to the sliding window and
/// runs a detection tick at every tick.every_days boundary the data
/// crosses, publishing TickResults to subscribers in tick order.
class Server {
 public:
  using Subscriber = std::function<void(const TickResult&)>;

  /// What RestoreFromCheckpoint recovered — the replay contract: feed the
  /// canonically-sorted source stream starting at edge index num_edges.
  struct RestoreInfo {
    int64_t tick = 0;        ///< ticks already completed
    uint64_t num_edges = 0;  ///< edges already recovered (window + WAL replay)
    double max_time = 0;     ///< newest timestamp already ingested
    uint64_t wal_seq = 0;    ///< highest WAL sequence recovered (0 = no WAL)
    uint64_t wal_epoch = 0;  ///< fencing epoch after recovery (0 = no WAL)
  };

  /// How TryIngest resolved, in admission-ladder order.
  enum class Admit {
    kAccepted,   ///< batch enqueued
    kRejected,   ///< failed validation (or an armed ingest failpoint)
    kQueueFull,  ///< bounded queue at capacity — shed, retry later
    kStopped,    ///< server not running (stopped or dead)
  };

  virtual ~Server() = default;

  /// Registers a per-tick callback (invoked on the detection thread, in
  /// tick order). Must be called before Start().
  virtual void Subscribe(Subscriber subscriber) = 0;

  /// Restores window, tick schedule, and warm-start state from a
  /// checkpoint (file/manifest path, or the newest loadable checkpoint in
  /// a directory). Must be called before Start(). Replaying the stream's
  /// remaining edges afterwards produces tick output identical to an
  /// uninterrupted run.
  virtual Result<RestoreInfo> RestoreFromCheckpoint(
      const std::string& path_or_dir) = 0;

  /// Launches the detection thread.
  virtual Status Start() = 0;

  /// Enqueues a batch. Blocks while the queue is at max_queue_batches
  /// (backpressure). Returns false if the batch fails validation or the
  /// server is stopped/dead (batch dropped). `ctx` carries the batch's
  /// trace context and arrival stamp through the queue (and across shard
  /// sub-batch routing) to the tick that consumes it.
  virtual bool Ingest(std::vector<graph::TimedEdge> batch,
                      IngestContext ctx) = 0;
  bool Ingest(std::vector<graph::TimedEdge> batch) {
    return Ingest(std::move(batch), IngestContext{});
  }

  /// Non-blocking Ingest: a full queue returns kQueueFull immediately
  /// instead of waiting. The network frontend's admission path — a shed
  /// batch becomes 429 + Retry-After on the wire.
  virtual Admit TryIngest(std::vector<graph::TimedEdge> batch,
                          IngestContext ctx) = 0;
  Admit TryIngest(std::vector<graph::TimedEdge> batch) {
    return TryIngest(std::move(batch), IngestContext{});
  }

  /// Blocks until every ingested batch has been processed and all due
  /// ticks have run.
  virtual void Flush() = 0;

  /// Stops the server: no further ingest, the in-flight LP run (if any) is
  /// cancelled through the RunContext stop token, the thread is joined.
  /// Call Flush() first for a graceful drain.
  virtual void Stop() = 0;

  /// On-demand crash-consistent snapshot into checkpoint.dir, on top of
  /// the periodic every_ticks cadence. Thread-safe: while the server is
  /// running the write is handed to the detection thread (the caller
  /// blocks until it lands between batches); before Start() or after
  /// Stop() it runs inline. InvalidArgument without a checkpoint dir;
  /// Cancelled if the server stops or dies first.
  virtual Status WriteCheckpoint() = 0;

  /// Live fleet resize (DESIGN.md §4.14): migrate detection state to
  /// `new_num_shards` shards without dropping a batch or breaking the
  /// subscriber diff stream. While the server is running the migration is
  /// handed to the detection thread (quiesce → re-partition → resume; the
  /// caller blocks until it commits or aborts); before Start() it runs
  /// inline, which is how an offline restore is re-shaped. A failure
  /// before the commit point leaves the fleet on its old shape — retry is
  /// always safe. The base implementation only accepts the no-op resize:
  /// StreamServer is structurally one shard (restore its checkpoint into a
  /// ShardedStreamServer to scale out — checkpoints are shape-portable).
  virtual Status Resize(int new_num_shards) {
    if (new_num_shards == num_shards()) return Status::OK();
    return Status::InvalidArgument(
        "this server cannot resize to " + std::to_string(new_num_shards) +
        " shards; restore its (shape-portable) checkpoint into a "
        "ShardedStreamServer instead");
  }

  /// First non-cancellation error a tick produced, if any. Transient
  /// errors absorbed by a successful retry are not recorded.
  virtual Status last_error() const = 0;

  /// True while the detection thread is serving: Start() succeeded, no
  /// Stop() yet, and no fatal error has killed the loop. Ingest() returns
  /// false exactly when this is false.
  virtual bool running() const = 0;

  virtual ServerStats stats() const = 0;

  /// The registry serving telemetry flows into: ServerConfig::metrics when
  /// supplied, else the server's private one. Valid for the server's
  /// lifetime; hand it to an obs::HttpEndpoint (or mount it on the ingest
  /// service) to watch the server live.
  virtual obs::MetricRegistry* metrics() const = 0;

  /// Detection shards behind this server (1 for StreamServer).
  virtual int num_shards() const = 0;

  /// The write-ahead log when DurabilityPolicy is enabled (opened by
  /// Start() or RestoreFromCheckpoint(), whichever runs first); null
  /// otherwise. The replication service reads frames from it and
  /// promotion bumps its fencing epoch.
  virtual wal::Wal* wal() const { return nullptr; }

  /// Flight recorder holding the last trace.recorder_ticks complete
  /// per-tick span trees (the GET /debug/ticks payload and the
  /// chrome://tracing export source); null when the recorder is disabled.
  virtual const obs::FlightRecorder* flight_recorder() const = 0;
};

/// Constructs the right Server for `num_shards`: StreamServer for 1,
/// ShardedStreamServer for N > 1. The one place shard count is decided.
/// Non-positive counts are a caller bug and return nullptr (logged) —
/// never a silently defaulted 1-shard server.
std::unique_ptr<Server> MakeServer(ServerConfig config, int num_shards = 1);

}  // namespace glp::serve
