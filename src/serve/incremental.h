// Persistent cross-tick connectivity for the incremental serve path
// (DESIGN.md §4.10): a union-find over the entity universe that survives
// window advances, absorbing appended edges in place and rebuilding only
// the components that lost window edges. Its dirty-component set is what
// bounds per-tick LP and extraction work by what actually changed —
// Gunrock's work-proportional-to-the-active-set philosophy applied to the
// streaming tick instead of one kernel launch.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/sliding_window.h"
#include "graph/types.h"

namespace glp::serve {

/// \brief Union-find over stream entities, maintained across ticks.
///
/// Presence is tracked by window edge-endpoint degree: an entity with no
/// window edges is not in any component. Each operation (ApplyDelta /
/// RebuildAll / RebuildClean) starts a fresh tick epoch and leaves behind
/// the canonical set of *dirty* component roots — components whose edge
/// set changed this tick and therefore need LP re-run. The eviction rule:
/// a component that lost any window edge is reset to singletons and
/// re-unioned from its retained edges (connectivity can only be re-derived,
/// never decremented); a component touched solely by appended edges is
/// union-merged in place. Both are dirty; untouched components are clean
/// and keep their previous labels and cluster records verbatim.
///
/// Query methods are non-const only because Find performs path halving;
/// they never change the partition.
class IncrementalTracker {
 public:
  /// Applies one exact window advance delta (delta.exact must be true).
  /// `edges` is the stream's current edge array the delta indexes into.
  void ApplyDelta(const std::vector<graph::TimedEdge>& edges,
                  const graph::WindowDelta& delta);

  /// Rebuilds connectivity from scratch over window edges [lo, hi) and
  /// marks every component dirty — the inexact-delta / fault fallback.
  void RebuildAll(const std::vector<graph::TimedEdge>& edges, size_t lo,
                  size_t hi);

  /// Rebuilds connectivity with *nothing* dirty — checkpoint restore,
  /// where the previous tick's labels are already authoritative.
  void RebuildClean(const std::vector<graph::TimedEdge>& edges, size_t lo,
                    size_t hi);

  // -------------------------------------------------------------------------
  // Phased multi-window variants — the sharded fleet feeds one tracker from
  // N per-shard windows (owned edges plus mirrors; a mirrored copy just
  // double-counts an endpoint degree, which cancels because both copies
  // appear and expire together). One tick is
  //   BeginTick -> Expire per window -> Rescan per window -> Append per
  //   window -> FinishTick
  // and the phase barriers matter: every window's expirations must land
  // before any retained-edge rescan, or a component spanning shards would
  // re-derive from only one shard's retained edges. ApplyDelta is exactly
  // this sequence over a single window.
  // -------------------------------------------------------------------------

  void BeginTick();
  /// Drops expired endpoint degrees and resets every component that lost an
  /// edge to marked singletons (degree-zero members are evicted).
  void Expire(const std::vector<graph::TimedEdge>& edges,
              const graph::WindowDelta& delta);
  /// Re-derives reset components' connectivity from the retained range.
  void Rescan(const std::vector<graph::TimedEdge>& edges,
              const graph::WindowDelta& delta);
  /// Unions appended edges in place, dirtying every component they touch.
  void Append(const std::vector<graph::TimedEdge>& edges,
              const graph::WindowDelta& delta);
  void FinishTick();

  /// Multi-window rebuild: BeginRebuild -> AddWindowRange per window ->
  /// FinishRebuild. `mark_all_dirty` selects RebuildAll vs RebuildClean
  /// semantics.
  void BeginRebuild();
  void AddWindowRange(const std::vector<graph::TimedEdge>& edges, size_t lo,
                      size_t hi);
  void FinishRebuild(bool mark_all_dirty);

  /// Writes IsDirty(e) for every entity in [0, universe) into `flags`
  /// (assigned/resized). One single-threaded pass with path compression, so
  /// concurrent readers of the result never race on Find's path halving —
  /// the sharded server snapshots this before fanning detection out.
  void ExportDirty(size_t universe, std::vector<uint8_t>* flags);

  /// True when the entity has at least one edge in the current window.
  bool InWindow(graph::VertexId entity) const {
    return static_cast<size_t>(entity) < deg_.size() && deg_[entity] > 0;
  }

  /// True when the entity left the window, was never seen, or belongs to a
  /// component dirtied by the last operation. The negation is the reuse
  /// licence: a clean in-window entity's component is byte-identical to
  /// last tick.
  bool IsDirty(graph::VertexId entity);

  graph::VertexId Root(graph::VertexId entity) { return Find(entity); }

  /// Canonical dirty-component roots left by the last operation.
  const std::vector<graph::VertexId>& dirty_roots() const {
    return dirty_roots_;
  }
  int64_t NumDirtyComponents() const {
    return static_cast<int64_t>(dirty_roots_.size());
  }

  /// Members of the component rooted at `root` (valid only at roots).
  const std::vector<graph::VertexId>& MembersOf(graph::VertexId root) const {
    return members_[root];
  }

 private:
  void NewEpoch();
  void EnsureUniverse(graph::VertexId max_entity);
  graph::VertexId Find(graph::VertexId v);
  /// Unions the two components; the surviving root inherits either side's
  /// dirty mark. Returns the surviving root.
  graph::VertexId Union(graph::VertexId a, graph::VertexId b);
  /// Registers the entity as a window member (lazy singleton init) and
  /// counts one more edge endpoint on it.
  void Touch(graph::VertexId e);
  void Mark(graph::VertexId e) { mark_epoch_[e] = epoch_; }
  bool Marked(graph::VertexId e) const { return mark_epoch_[e] == epoch_; }
  /// Deduplicates `candidates` into canonical dirty roots.
  void Canonicalize(const std::vector<graph::VertexId>& candidates);

  std::vector<graph::VertexId> parent_;
  std::vector<int64_t> deg_;  ///< window edge endpoints per entity
  std::vector<std::vector<graph::VertexId>> members_;  ///< valid at roots
  // Per-tick epoch stamps: mark_epoch_ flags dirty entities/roots,
  // seen_epoch_ deduplicates roots during Canonicalize.
  std::vector<uint32_t> mark_epoch_, seen_epoch_;
  uint32_t epoch_ = 0;
  std::vector<graph::VertexId> dirty_roots_;
  /// Dirty-root candidates accumulated between BeginTick/BeginRebuild and
  /// the matching Finish call (deduplicated there).
  std::vector<graph::VertexId> candidates_;
};

}  // namespace glp::serve
