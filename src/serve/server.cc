#include "serve/server.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/collectors.h"
#include "util/json.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace glp::serve {

using graph::Label;
using graph::VertexId;

std::string ServerStats::ToJson() const {
  json::Writer w;
  w.BeginObject();
  w.Key("ticks").Int(ticks);
  w.Key("warm_ticks").Int(warm_ticks);
  w.Key("cold_ticks").Int(cold_ticks);
  w.Key("batches_ingested").Int(batches_ingested);
  w.Key("edges_ingested").Int(edges_ingested);
  w.Key("ingest_blocked").Int(ingest_blocked);
  w.Key("queue_peak").Uint(queue_peak);
  w.Key("tick_p50_seconds").Double(tick_p50_seconds);
  w.Key("tick_p99_seconds").Double(tick_p99_seconds);
  w.Key("tick_max_seconds").Double(tick_max_seconds);
  w.Key("warm_avg_iterations").Double(warm_avg_iterations);
  w.Key("cold_avg_iterations").Double(cold_avg_iterations);
  w.Key("last_ingest_lag_days").Double(last_ingest_lag_days);
  w.EndObject();
  return w.Take();
}

StreamServer::StreamServer(ServerConfig config)
    : config_(std::move(config)),
      cursor_(&window_, config_.detect.window_days,
              config_.detect.collapse_window_graphs) {
  if (config_.metrics != nullptr) {
    registry_ = config_.metrics;
  } else {
    owned_registry_ = std::make_unique<obs::MetricRegistry>();
    registry_ = owned_registry_.get();
  }
  ins_.tick_seconds = registry_->GetHistogram(
      "glp_serve_tick_seconds", "Wall time of one detection tick");
  ins_.warm_ticks = registry_->GetCounter(
      "glp_serve_ticks_total", "Detection ticks run", {{"mode", "warm"}});
  ins_.cold_ticks = registry_->GetCounter(
      "glp_serve_ticks_total", "Detection ticks run", {{"mode", "cold"}});
  ins_.warm_iterations = registry_->GetCounter(
      "glp_serve_lp_iterations_total", "LP iterations run by detection ticks",
      {{"mode", "warm"}});
  ins_.cold_iterations = registry_->GetCounter(
      "glp_serve_lp_iterations_total", "LP iterations run by detection ticks",
      {{"mode", "cold"}});
  ins_.batches_ingested = registry_->GetCounter(
      "glp_serve_batches_ingested_total", "Edge batches accepted by Ingest");
  ins_.edges_ingested = registry_->GetCounter(
      "glp_serve_edges_ingested_total", "Edges accepted by Ingest");
  ins_.ingest_blocked = registry_->GetCounter(
      "glp_serve_ingest_blocked_total",
      "Times Ingest blocked on a full queue (backpressure)");
  ins_.queue_depth = registry_->GetGauge(
      "glp_serve_queue_depth", "Batches waiting in the ingest queue");
  ins_.queue_peak = registry_->GetGauge(
      "glp_serve_queue_peak", "High-water mark of the ingest queue");
  ins_.ingest_lag_days = registry_->GetGauge(
      "glp_serve_ingest_lag_days",
      "Newest ingested timestamp minus the last tick's window end");
  obs::RegisterThreadPoolCollector(
      registry_,
      config_.pool != nullptr ? config_.pool : glp::ThreadPool::Default());
}

StreamServer::~StreamServer() { Stop(); }

void StreamServer::Subscribe(Subscriber subscriber) {
  subscribers_.push_back(std::move(subscriber));
}

Status StreamServer::Start() {
  std::lock_guard<std::mutex> lk(mu_);
  if (started_) return Status::InvalidArgument("server already started");
  if (config_.tick_every_days <= 0) {
    return Status::InvalidArgument("tick_every_days must be positive");
  }
  if (config_.max_queue_batches == 0) {
    return Status::InvalidArgument("max_queue_batches must be >= 1");
  }
  started_ = true;
  stopping_ = false;
  stop_token_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { DetectLoop(); });
  return Status::OK();
}

bool StreamServer::Ingest(std::vector<graph::TimedEdge> batch) {
  std::unique_lock<std::mutex> lk(mu_);
  if (!started_ || stopping_) return false;
  if (queue_.size() >= config_.max_queue_batches) {
    ins_.ingest_blocked->Increment();
    not_full_cv_.wait(lk, [&] {
      return stopping_ || queue_.size() < config_.max_queue_batches;
    });
    if (stopping_) return false;
  }
  for (const graph::TimedEdge& e : batch) {
    ingested_max_time_ = std::max(ingested_max_time_, e.time);
  }
  ins_.batches_ingested->Increment();
  ins_.edges_ingested->Increment(batch.size());
  queue_.push_back(std::move(batch));
  ins_.queue_depth->Set(static_cast<double>(queue_.size()));
  ins_.queue_peak->Max(static_cast<double>(queue_.size()));
  queue_cv_.notify_one();
  return true;
}

void StreamServer::Flush() {
  std::unique_lock<std::mutex> lk(mu_);
  drained_cv_.wait(lk, [&] {
    return (queue_.empty() && !busy_) || stopping_;
  });
}

void StreamServer::Stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!started_) return;
    stopping_ = true;
    stop_token_.store(true, std::memory_order_relaxed);
    queue_cv_.notify_all();
    not_full_cv_.notify_all();
    drained_cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lk(mu_);
  started_ = false;
}

Status StreamServer::last_error() const {
  std::lock_guard<std::mutex> lk(mu_);
  return last_error_;
}

ServerStats StreamServer::stats() const {
  // Pure instrument reads — no lock; every source is an atomic in the
  // registry. Quantiles come from the tick-latency histogram (factor-2
  // worst-case relative error from the log2 bucketing; monotone in p).
  ServerStats s;
  s.warm_ticks = static_cast<int64_t>(ins_.warm_ticks->Value());
  s.cold_ticks = static_cast<int64_t>(ins_.cold_ticks->Value());
  s.ticks = s.warm_ticks + s.cold_ticks;
  s.batches_ingested = static_cast<int64_t>(ins_.batches_ingested->Value());
  s.edges_ingested = static_cast<int64_t>(ins_.edges_ingested->Value());
  s.ingest_blocked = static_cast<int64_t>(ins_.ingest_blocked->Value());
  s.queue_peak = static_cast<size_t>(ins_.queue_peak->Value());
  s.tick_p50_seconds = ins_.tick_seconds->Quantile(0.50);
  s.tick_p99_seconds = ins_.tick_seconds->Quantile(0.99);
  s.tick_max_seconds = ins_.tick_seconds->MaxBound();
  s.warm_avg_iterations =
      s.warm_ticks == 0
          ? 0
          : static_cast<double>(ins_.warm_iterations->Value()) / s.warm_ticks;
  s.cold_avg_iterations =
      s.cold_ticks == 0
          ? 0
          : static_cast<double>(ins_.cold_iterations->Value()) / s.cold_ticks;
  s.last_ingest_lag_days = ins_.ingest_lag_days->Value();
  return s;
}

void StreamServer::DetectLoop() {
  for (;;) {
    std::vector<graph::TimedEdge> batch;
    {
      std::unique_lock<std::mutex> lk(mu_);
      queue_cv_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      batch = std::move(queue_.front());
      queue_.pop_front();
      ins_.queue_depth->Set(static_cast<double>(queue_.size()));
      busy_ = true;
      not_full_cv_.notify_all();
    }
    window_.Append(std::move(batch));
    RunDueTicks();
    {
      std::lock_guard<std::mutex> lk(mu_);
      busy_ = false;
      if (queue_.empty()) drained_cv_.notify_all();
    }
  }
}

void StreamServer::RunDueTicks() {
  if (window_.num_stream_edges() == 0) return;
  const double cadence = config_.tick_every_days;
  if (!tick_schedule_primed_) {
    // First boundary strictly after the stream's earliest timestamp, on the
    // absolute grid k * cadence — replaying the same stream yields the same
    // tick schedule regardless of batch partitioning.
    next_tick_end_ =
        cadence * (std::floor(window_.min_time() / cadence) + 1.0);
    tick_schedule_primed_ = true;
  }
  while (window_.max_time() >= next_tick_end_) {
    if (stop_token_.load(std::memory_order_relaxed)) return;
    RunTick(next_tick_end_);
    next_tick_end_ += cadence;
  }
}

std::vector<Label> StreamServer::MapWarmLabels(
    const graph::WindowSnapshot& cur) {
  const size_t universe = static_cast<size_t>(window_.max_entity()) + 1;
  auto stamp = [universe](EntityMap* m,
                          const std::vector<VertexId>& l2g) {
    if (m->epoch_of.size() < universe) {
      m->epoch_of.assign(universe, 0);
      m->local_of.resize(universe);
      m->epoch = 0;
    }
    if (++m->epoch == 0) {
      std::fill(m->epoch_of.begin(), m->epoch_of.end(), 0u);
      m->epoch = 1;
    }
    for (size_t i = 0; i < l2g.size(); ++i) {
      m->epoch_of[l2g[i]] = m->epoch;
      m->local_of[l2g[i]] = static_cast<VertexId>(i);
    }
  };
  stamp(&prev_map_, prev_l2g_);
  stamp(&cur_map_, cur.local_to_global);

  // A label is a local vertex id of the window that produced it (LP never
  // invents ids). Anchor each carried-over entity's previous label to its
  // global entity, then re-express it as that entity's local id in the new
  // window; entities new to the window (or whose anchor left it) start as
  // cold singletons.
  std::vector<Label> init(cur.local_to_global.size());
  for (size_t v = 0; v < cur.local_to_global.size(); ++v) {
    const VertexId g = cur.local_to_global[v];
    Label out = static_cast<Label>(v);
    if (prev_map_.epoch_of[g] == prev_map_.epoch) {
      const Label pl = prev_labels_[prev_map_.local_of[g]];
      if (pl != graph::kInvalidLabel &&
          static_cast<size_t>(pl) < prev_l2g_.size()) {
        const VertexId anchor = prev_l2g_[pl];
        if (cur_map_.epoch_of[anchor] == cur_map_.epoch) {
          out = static_cast<Label>(cur_map_.local_of[anchor]);
        }
      }
    }
    init[v] = out;
  }
  return init;
}

void StreamServer::RunTick(double end_time) {
  glp::Timer tick_timer;
  const double host_start =
      config_.profiler != nullptr ? config_.profiler->HostNow() : 0;

  TickResult tr;
  tr.tick = num_ticks_;
  tr.window_end = end_time;
  tr.window_start = end_time - config_.detect.window_days;

  glp::Timer build_timer;
  const graph::WindowSnapshot& snap = cursor_.AdvanceTo(end_time);
  const double build_seconds = build_timer.Seconds();

  pipeline::PipelineConfig cfg = config_.detect;
  const bool refresh_due =
      config_.cold_refresh_every_ticks > 0 &&
      num_ticks_ % config_.cold_refresh_every_ticks == 0;
  if (config_.warm_start && have_prev_ && !refresh_due &&
      snap.graph.num_vertices() > 0) {
    cfg.lp.initial_labels = MapWarmLabels(snap);
    tr.warm = true;
  }
  if (config_.record_warm_labels) tr.warm_labels = cfg.lp.initial_labels;

  lp::RunContext ctx;
  ctx.profiler = config_.profiler;
  ctx.pool = config_.pool;
  ctx.stop_token = &stop_token_;
  ctx.metrics = registry_;

  if (snap.graph.num_vertices() > 0) {
    auto result = pipeline::DetectOnSnapshot(snap, cfg, ctx, config_.seeds,
                                             config_.ground_truth,
                                             tr.window_start, tr.window_end);
    if (!result.ok()) {
      if (!result.status().IsCancelled()) {
        std::lock_guard<std::mutex> lk(mu_);
        if (last_error_.ok()) last_error_ = result.status();
      }
      return;  // tick abandoned; warm state keeps the previous tick's view
    }
    tr.detection = std::move(result).value();
    tr.detection.build_seconds = build_seconds;
    prev_l2g_ = snap.local_to_global;
    prev_labels_ = tr.detection.lp.labels;
    have_prev_ = true;
  } else {
    // Empty window: nothing to cluster; previously confirmed clusters all
    // expire below.
    have_prev_ = false;
  }

  // Diff confirmed clusters against the previous tick (clusters keyed by
  // their sorted global member lists).
  std::set<std::vector<VertexId>> confirmed_now;
  for (const pipeline::SuspiciousCluster& c : tr.detection.clusters) {
    if (c.confirmed) confirmed_now.insert(c.members);
  }
  for (const auto& members : confirmed_now) {
    if (prev_confirmed_.count(members) == 0) {
      tr.new_confirmed.push_back(members);
    }
  }
  for (const auto& members : prev_confirmed_) {
    if (confirmed_now.count(members) == 0) {
      tr.expired_confirmed.push_back(members);
    }
  }
  prev_confirmed_ = std::move(confirmed_now);

  tr.tick_wall_seconds = tick_timer.Seconds();
  {
    std::lock_guard<std::mutex> lk(mu_);
    tr.ingest_lag_days = ingested_max_time_ - end_time;
  }
  ins_.ingest_lag_days->Set(tr.ingest_lag_days);
  ins_.tick_seconds->Observe(tr.tick_wall_seconds);
  if (tr.warm) {
    ins_.warm_ticks->Increment();
    ins_.warm_iterations->Increment(
        static_cast<uint64_t>(tr.detection.lp.iterations));
  } else {
    ins_.cold_ticks->Increment();
    ins_.cold_iterations->Increment(
        static_cast<uint64_t>(tr.detection.lp.iterations));
  }
  if (config_.profiler != nullptr) {
    config_.profiler->RecordHostEvent(tr.warm ? "tick-warm" : "tick-cold",
                                      host_start, tr.tick_wall_seconds);
  }
  ++num_ticks_;
  for (const Subscriber& s : subscribers_) s(tr);
}

}  // namespace glp::serve
