#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <thread>
#include <utility>

#include "obs/collectors.h"
#include "serve/checkpoint.h"
#include "util/failpoint.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace glp::serve {

using graph::Label;
using graph::VertexId;

namespace {

/// Transient errors are worth retrying (flaky IO, device faults —
/// Internal — and pressure spikes); everything else is a programming or
/// configuration error that a retry cannot fix.
bool IsTransient(const Status& s) {
  switch (s.code()) {
    case StatusCode::kIoError:
    case StatusCode::kCapacityExceeded:
    case StatusCode::kInternal:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::string ServerStats::ToJson() const {
  json::Writer w;
  w.BeginObject();
  w.Key("ticks").Int(ticks);
  w.Key("warm_ticks").Int(warm_ticks);
  w.Key("cold_ticks").Int(cold_ticks);
  w.Key("batches_ingested").Int(batches_ingested);
  w.Key("edges_ingested").Int(edges_ingested);
  w.Key("ingest_blocked").Int(ingest_blocked);
  w.Key("queue_peak").Uint(queue_peak);
  w.Key("batches_rejected").Int(batches_rejected);
  w.Key("ticks_shed").Int(ticks_shed);
  w.Key("degraded_ticks").Int(degraded_ticks);
  w.Key("deadline_overruns").Int(deadline_overruns);
  w.Key("tick_retries").Int(tick_retries);
  w.Key("ticks_failed").Int(ticks_failed);
  w.Key("engine_fallbacks").Int(engine_fallbacks);
  w.Key("warm_fallbacks").Int(warm_fallbacks);
  w.Key("cold_refresh_deferred").Int(cold_refresh_deferred);
  w.Key("checkpoints_written").Int(checkpoints_written);
  w.Key("checkpoint_failures").Int(checkpoint_failures);
  w.Key("reused_clusters").Int(reused_clusters);
  w.Key("incremental_rebuilds").Int(incremental_rebuilds);
  w.Key("last_dirty_components").Int(last_dirty_components);
  w.Key("tick_p50_seconds").Double(tick_p50_seconds);
  w.Key("tick_p99_seconds").Double(tick_p99_seconds);
  w.Key("tick_max_seconds").Double(tick_max_seconds);
  w.Key("warm_avg_iterations").Double(warm_avg_iterations);
  w.Key("cold_avg_iterations").Double(cold_avg_iterations);
  w.Key("last_ingest_lag_days").Double(last_ingest_lag_days);
  w.EndObject();
  return w.Take();
}

StreamServer::StreamServer(ServerConfig config)
    : config_(std::move(config)),
      cursor_(&window_, config_.detect.window_days,
              config_.detect.collapse_window_graphs),
      sampler_(config_.trace.sample_rate, config_.trace.sample_seed) {
  if (config_.trace.recorder_ticks > 0) {
    recorder_ = std::make_unique<obs::FlightRecorder>(
        static_cast<size_t>(config_.trace.recorder_ticks));
  }
  if (config_.metrics != nullptr) {
    registry_ = config_.metrics;
  } else {
    owned_registry_ = std::make_unique<obs::MetricRegistry>();
    registry_ = owned_registry_.get();
  }
  ins_.tick_seconds = registry_->GetHistogram(
      "glp_serve_tick_seconds", "Wall time of one detection tick");
  ins_.warm_ticks = registry_->GetCounter(
      "glp_serve_ticks_total", "Detection ticks run", {{"mode", "warm"}});
  ins_.cold_ticks = registry_->GetCounter(
      "glp_serve_ticks_total", "Detection ticks run", {{"mode", "cold"}});
  ins_.warm_iterations = registry_->GetCounter(
      "glp_serve_lp_iterations_total", "LP iterations run by detection ticks",
      {{"mode", "warm"}});
  ins_.cold_iterations = registry_->GetCounter(
      "glp_serve_lp_iterations_total", "LP iterations run by detection ticks",
      {{"mode", "cold"}});
  ins_.batches_ingested = registry_->GetCounter(
      "glp_serve_batches_ingested_total", "Edge batches accepted by Ingest");
  ins_.edges_ingested = registry_->GetCounter(
      "glp_serve_edges_ingested_total", "Edges accepted by Ingest");
  ins_.ingest_blocked = registry_->GetCounter(
      "glp_serve_ingest_blocked_total",
      "Times Ingest blocked on a full queue (backpressure)");
  ins_.queue_depth = registry_->GetGauge(
      "glp_serve_queue_depth", "Batches waiting in the ingest queue");
  ins_.queue_peak = registry_->GetGauge(
      "glp_serve_queue_peak", "High-water mark of the ingest queue");
  ins_.ingest_lag_days = registry_->GetGauge(
      "glp_serve_ingest_lag_days",
      "Newest ingested timestamp minus the last tick's window end");
  ins_.batches_rejected_invalid = registry_->GetCounter(
      "glp_serve_batches_rejected_total",
      "Ingest batches rejected instead of entering the window",
      {{"reason", "invalid"}});
  ins_.batches_rejected_failpoint = registry_->GetCounter(
      "glp_serve_batches_rejected_total",
      "Ingest batches rejected instead of entering the window",
      {{"reason", "failpoint"}});
  ins_.batches_dropped = registry_->GetCounter(
      "glp_serve_batches_rejected_total",
      "Ingest batches rejected instead of entering the window",
      {{"reason", "append_failed"}});
  ins_.ticks_shed = registry_->GetCounter(
      "glp_serve_ticks_shed_total",
      "Overdue tick boundaries coalesced away under overload");
  ins_.degraded_ticks = registry_->GetCounter(
      "glp_serve_degraded_ticks_total",
      "Ticks run with the degraded LP iteration cap");
  ins_.deadline_overruns = registry_->GetCounter(
      "glp_serve_deadline_overruns_total",
      "Ticks whose wall time exceeded tick_deadline_seconds");
  ins_.tick_retries = registry_->GetCounter(
      "glp_serve_tick_retries_total",
      "Retry attempts after transient tick failures");
  ins_.ticks_failed = registry_->GetCounter(
      "glp_serve_ticks_failed_total",
      "Ticks abandoned after exhausting retries");
  ins_.engine_fallbacks = registry_->GetCounter(
      "glp_serve_fallbacks_total", "Degraded-path fallbacks taken",
      {{"kind", "engine"}});
  ins_.warm_fallbacks = registry_->GetCounter(
      "glp_serve_fallbacks_total", "Degraded-path fallbacks taken",
      {{"kind", "warm_to_cold"}});
  ins_.cold_refresh_deferred = registry_->GetCounter(
      "glp_serve_cold_refresh_deferred_total",
      "Cold refreshes postponed by the degradation ladder");
  ins_.checkpoints_ok = registry_->GetCounter(
      "glp_serve_checkpoints_total", "Periodic checkpoint attempts",
      {{"result", "ok"}});
  ins_.checkpoints_failed = registry_->GetCounter(
      "glp_serve_checkpoints_total", "Periodic checkpoint attempts",
      {{"result", "error"}});
  ins_.dirty_components = registry_->GetGauge(
      "glp_serve_dirty_components",
      "Components whose edge set changed in the last incremental tick");
  ins_.reused_clusters = registry_->GetCounter(
      "glp_serve_reused_clusters_total",
      "Clean-component cluster records reused verbatim by incremental ticks");
  ins_.incremental_rebuilds = registry_->GetCounter(
      "glp_serve_incremental_rebuilds_total",
      "Incremental-mode ticks that fell back to a full rebuild");
  ins_.wal_appends_ok = registry_->GetCounter(
      "glp_serve_wal_appends_total", "WAL append attempts",
      {{"result", "ok"}});
  ins_.wal_appends_failed = registry_->GetCounter(
      "glp_serve_wal_appends_total", "WAL append attempts",
      {{"result", "error"}});
  ins_.wal_duplicates = registry_->GetCounter(
      "glp_serve_wal_duplicates_total",
      "Replicated batches suppressed as already-logged duplicates");
  ins_.wal_fenced = registry_->GetCounter(
      "glp_serve_wal_fenced_total",
      "Replicated batches rejected for carrying a deposed fencing epoch");
  ins_.wal_replayed_batches = registry_->GetCounter(
      "glp_serve_wal_replayed_batches_total",
      "Batches recovered from the WAL during restore");
  ins_.wal_pruned_segments = registry_->GetCounter(
      "glp_serve_wal_pruned_segments_total",
      "WAL segments garbage-collected after covering checkpoints");
  ins_.wal_fsyncs = registry_->GetCounter(
      "glp_serve_wal_fsyncs_total", "WAL fsync calls (group commit)");
  ins_.wal_bytes = registry_->GetCounter(
      "glp_serve_wal_bytes_total", "Frame bytes appended to the WAL");
  ins_.wal_last_seq = registry_->GetGauge(
      "glp_serve_wal_last_seq", "Highest WAL sequence number appended");
  ins_.wal_epoch = registry_->GetGauge(
      "glp_serve_wal_epoch", "Current WAL fencing epoch");
  ins_.wal_segments = registry_->GetGauge(
      "glp_serve_wal_segments", "Live WAL segment files");
  obs::RegisterThreadPoolCollector(
      registry_,
      config_.pool != nullptr ? config_.pool : glp::ThreadPool::Default());
  // Export failpoint fire counts, so a chaos run's injected-fault schedule
  // is auditable from the same scrape as its effects.
  registry_->AddCollector([registry = registry_] {
    for (const auto& [point, fires] :
         fail::FailpointRegistry::Global().FireCounts()) {
      registry
          ->GetGauge("glp_failpoint_fires",
                     "Times an armed failpoint has fired", {{"point", point}})
          ->Set(static_cast<double>(fires));
    }
  });
}

StreamServer::~StreamServer() { Stop(); }

void StreamServer::Subscribe(Subscriber subscriber) {
  subscribers_.push_back(std::move(subscriber));
}

Result<StreamServer::RestoreInfo> StreamServer::RestoreFromCheckpoint(
    const std::string& path_or_dir) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (started_) {
      return Status::InvalidArgument(
          "RestoreFromCheckpoint requires a not-yet-started server");
    }
  }
  // The WAL opens first: Open() truncates a torn tail (crash mid-append)
  // and recovers the durable sequence, which recovery below replays on top
  // of the checkpoint. With no checkpoint at all the WAL alone is a
  // complete recovery source (replay from an empty window).
  {
    const Status wst = EnsureWalOpen();
    if (!wst.ok()) return wst;
  }
  // Checkpoints are shape-portable (DESIGN.md §4.14): the portable loader
  // returns flat files verbatim and re-expresses fleet snapshots (any
  // shard count) in the flat form, so a sharded deployment can be scaled
  // down to one shard by restoring its directory here.
  std::error_code ec;
  bool have_checkpoint = true;
  CheckpointData data;
  int source_shards = 1;
  if (wal_ != nullptr && !std::filesystem::is_directory(path_or_dir, ec) &&
      !std::filesystem::exists(path_or_dir, ec)) {
    have_checkpoint = false;
  } else {
    auto port = LoadPortableCheckpoint(path_or_dir);
    if (port.ok()) {
      PortableCheckpoint p = std::move(port).value();
      source_shards = p.source_shards;
      data = std::move(p.data);
      if (source_shards != 1) {
        GLP_LOG(Info) << "resharding checkpoint: " << source_shards
                      << " -> 1 shard";
      }
    } else if (wal_ != nullptr &&
               port.status().code() == StatusCode::kNotFound) {
      have_checkpoint = false;
    } else {
      return port.status();
    }
  }

  window_ = graph::SlidingWindow(std::move(data.edges));
  num_ticks_ = data.tick;
  tick_schedule_primed_ = data.tick_schedule_primed;
  next_tick_end_ = data.next_tick_end;
  have_prev_ = data.have_prev;
  prev_l2g_ = std::move(data.prev_l2g);
  prev_labels_ = std::move(data.prev_labels);
  prev_confirmed_.clear();
  for (auto& members : data.prev_confirmed) {
    prev_confirmed_.insert(std::move(members));
  }
  last_checkpoint_tick_ = data.tick;
  last_tick_wall_seconds_ = 0;
  refresh_pending_ = false;
  // Incremental restore: re-seat the anchors and rebuild the persistent
  // union-find deterministically from the restored window, primed at the
  // last completed tick boundary so the first post-restore tick advances by
  // an exact delta. Cluster records are not checkpointed — that first tick
  // runs LP dirty-only but extracts over all components (extract_all).
  inc_reuse_ok_ = false;
  records_valid_ = false;
  records_.clear();
  if (config_.tick.incremental && data.has_incremental && tick_schedule_primed_ &&
      window_.max_entity() != graph::kInvalidVertex) {
    const size_t universe = static_cast<size_t>(window_.max_entity()) + 1;
    anchor_of_.assign(universe, graph::kInvalidVertex);
    bool anchors_ok = true;
    for (size_t i = 0; i < data.inc_entities.size(); ++i) {
      if (static_cast<size_t>(data.inc_entities[i]) >= universe ||
          static_cast<size_t>(data.inc_anchors[i]) >= universe) {
        anchors_ok = false;
        break;
      }
      anchor_of_[data.inc_entities[i]] = data.inc_anchors[i];
    }
    if (anchors_ok) {
      cursor_.PrimeAt(next_tick_end_ - config_.tick.every_days);
      inc_tracker_.RebuildClean(window_.edges(), cursor_.lo(), cursor_.hi());
      inc_reuse_ok_ = true;
    }
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    ingested_max_time_ = data.ingested_max_time;
  }
  RestoreInfo info;
  info.tick = num_ticks_;
  info.num_edges = window_.num_stream_edges();
  info.max_time = data.ingested_max_time;

  // WAL replay: everything logged after the checkpoint's covered sequence
  // re-enters the ingest queue (in sequence order, before Start() lets new
  // batches in), so the detection thread re-runs the lost ticks through
  // the normal path — output byte-identical to the uninterrupted run.
  consumed_wal_seq_ = data.wal_seq;
  if (wal_ != nullptr) {
    if (data.wal_epoch > 0) {
      const Status est = wal_->EnsureEpochAtLeast(data.wal_epoch);
      if (!est.ok()) return est;
    }
    auto frames = wal_->ReadFrom(data.wal_seq + 1);
    if (!frames.ok()) return frames.status();
    uint64_t expected = data.wal_seq + 1;
    double max_time = info.max_time;
    size_t replayed = 0;
    for (wal::WalFrame& f : frames.value()) {
      if (f.seq != expected) {
        // Frames between the checkpoint and the oldest surviving segment
        // were pruned against a newer checkpoint that no longer loads —
        // replay would silently skip batches, so refuse instead.
        return Status::IoError(
            "wal: replay gap: checkpoint covers seq " +
            std::to_string(data.wal_seq) + " but next durable frame is " +
            std::to_string(f.seq));
      }
      ++expected;
      QueuedBatch qb;
      qb.wal_seq = f.seq;
      qb.ctx.wal_seq = f.seq;
      qb.ctx.wal_epoch = f.epoch;
      qb.ctx.wal_wall_seconds = f.wall_seconds;
      qb.enqueue_seconds = obs::MonotonicSeconds();
      for (const graph::TimedEdge& e : f.edges) {
        max_time = std::max(max_time, e.time);
      }
      info.num_edges += f.edges.size();
      qb.edges = std::move(f.edges);
      {
        std::lock_guard<std::mutex> lk(mu_);
        queue_.push_back(std::move(qb));
      }
      ++replayed;
    }
    ins_.wal_replayed_batches->Increment(replayed);
    {
      std::lock_guard<std::mutex> lk(mu_);
      ingested_max_time_ = max_time;
    }
    info.max_time = max_time;
    info.wal_seq = wal_->last_seq();
    info.wal_epoch = wal_->epoch();
    PublishWalStats();
  }
  GLP_LOG(Info) << "restored "
                << (have_checkpoint ? "checkpoint from " + path_or_dir
                                    : "(no checkpoint)")
                << " (tick " << info.tick << ", " << info.num_edges
                << " edges" << (wal_ != nullptr ? ", wal seq " +
                std::to_string(info.wal_seq) : "") << ")";
  return info;
}

Status StreamServer::Start() {
  std::lock_guard<std::mutex> lk(mu_);
  if (started_) return Status::InvalidArgument("server already started");
  if (config_.tick.every_days <= 0) {
    return Status::InvalidArgument("tick_every_days must be positive");
  }
  if (config_.max_queue_batches == 0) {
    return Status::InvalidArgument("max_queue_batches must be >= 1");
  }
  if (config_.resilience.tick_deadline_seconds < 0) {
    return Status::InvalidArgument("tick_deadline_seconds must be >= 0");
  }
  if (config_.tick.incremental) {
    // The per-component exactness preconditions (DESIGN.md §4.10) —
    // rejected up front rather than surfacing as per-tick failures.
    const lp::RunConfig& lp = config_.detect.lp;
    if (!lp.initial_labels.empty() || !lp.synchronous ||
        config_.detect.variant == lp::VariantKind::kSlp ||
        (lp.stop_when_stable && lp.max_iterations % 2 != 0)) {
      return Status::InvalidArgument(
          "incremental serving requires synchronous LP with default "
          "initialization, a non-SLP variant, and an even iteration budget "
          "under stop_when_stable");
    }
  }
  if (!config_.checkpoint.dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.checkpoint.dir, ec);
    if (ec) {
      return Status::IoError("cannot create checkpoint dir " +
                             config_.checkpoint.dir + ": " + ec.message());
    }
  }
  {
    const Status wst = EnsureWalOpen();
    if (!wst.ok()) return wst;
  }
  started_ = true;
  stopping_ = false;
  dead_ = false;
  stop_token_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { DetectLoop(); });
  return Status::OK();
}

bool StreamServer::ValidBatch(
    const std::vector<graph::TimedEdge>& batch) const {
  for (const graph::TimedEdge& e : batch) {
    if (!std::isfinite(e.time) || e.time < 0) return false;
    if (e.src == graph::kInvalidVertex || e.dst == graph::kInvalidVertex) {
      return false;
    }
    if (config_.resilience.entity_id_limit != 0 &&
        (e.src >= config_.resilience.entity_id_limit ||
         e.dst >= config_.resilience.entity_id_limit)) {
      return false;
    }
  }
  return true;
}

Status StreamServer::EnsureWalOpen() {
  if (!config_.durability.enabled() || wal_ != nullptr) return Status::OK();
  wal::WalOptions opts;
  opts.fsync_every_batches = config_.durability.fsync_every_batches;
  opts.fsync_interval_ms = config_.durability.fsync_interval_ms;
  opts.segment_max_bytes = config_.durability.segment_max_bytes;
  auto opened = wal::Wal::Open(config_.durability.dir, opts);
  if (!opened.ok()) return opened.status();
  wal_ = std::move(opened).value();
  PublishWalStats();
  return Status::OK();
}

void StreamServer::PublishWalStats() {
  if (wal_ == nullptr) return;
  const wal::WalStats s = wal_->stats();
  ins_.wal_last_seq->Set(static_cast<double>(s.last_seq));
  ins_.wal_epoch->Set(static_cast<double>(s.epoch));
  ins_.wal_segments->Set(static_cast<double>(s.segments));
  if (s.fsyncs > wal_published_fsyncs_) {
    ins_.wal_fsyncs->Increment(s.fsyncs - wal_published_fsyncs_);
    wal_published_fsyncs_ = s.fsyncs;
  }
  if (s.bytes_appended > wal_published_bytes_) {
    ins_.wal_bytes->Increment(s.bytes_appended - wal_published_bytes_);
    wal_published_bytes_ = s.bytes_appended;
  }
  if (s.pruned_segments > wal_published_pruned_) {
    ins_.wal_pruned_segments->Increment(s.pruned_segments -
                                        wal_published_pruned_);
    wal_published_pruned_ = s.pruned_segments;
  }
}

Status StreamServer::AppendToWalLocked(
    const std::vector<graph::TimedEdge>& batch, const IngestContext& ctx,
    QueuedBatch* qb) {
  if (wal_ == nullptr) return Status::OK();
  if (ctx.wal_seq != 0) {
    // Replication apply: keep the primary's sequence so a promoted standby
    // has a byte-compatible log. Duplicates and fenced epochs are resolved
    // by the Wal itself.
    wal::WalFrame frame;
    frame.seq = ctx.wal_seq;
    frame.epoch = ctx.wal_epoch;
    frame.wall_seconds = ctx.wal_wall_seconds;
    frame.edges = batch;
    const Status st = wal_->AppendFrame(frame);
    if (st.ok()) {
      qb->wal_seq = frame.seq;
      ins_.wal_appends_ok->Increment();
    } else if (st.code() == StatusCode::kAlreadyExists) {
      ins_.wal_duplicates->Increment();
    } else if (st.code() == StatusCode::kInvalidArgument) {
      ins_.wal_fenced->Increment();
    } else {
      ins_.wal_appends_failed->Increment();
    }
    PublishWalStats();
    return st;
  }
  auto seq = wal_->Append(batch, /*wall_seconds=*/0.0);
  if (!seq.ok()) {
    ins_.wal_appends_failed->Increment();
    PublishWalStats();
    return seq.status();
  }
  qb->wal_seq = seq.value();
  ins_.wal_appends_ok->Increment();
  PublishWalStats();
  return Status::OK();
}

bool StreamServer::Ingest(std::vector<graph::TimedEdge> batch,
                          IngestContext ctx) {
  if (!ValidBatch(batch)) {
    ins_.batches_rejected_invalid->Increment();
    return false;
  }
  // The serve-queue failpoint: injected Status rejects the batch, injected
  // latency models a slow producer-side hop. Evaluated outside the lock.
  const Status inj = fail::Inject("serve.ingest");
  if (!inj.ok()) {
    ins_.batches_rejected_failpoint->Increment();
    return false;
  }
  std::unique_lock<std::mutex> lk(mu_);
  if (!started_ || stopping_ || dead_) return false;
  if (queue_.size() >= config_.max_queue_batches) {
    ins_.ingest_blocked->Increment();
    not_full_cv_.wait(lk, [&] {
      return stopping_ || dead_ ||
             queue_.size() < config_.max_queue_batches;
    });
    if (stopping_ || dead_) return false;
  }
  QueuedBatch qb;
  if (wal_ != nullptr) {
    const Status wst = AppendToWalLocked(batch, ctx, &qb);
    // A replicated duplicate is already logged (and enqueued by the apply
    // that logged it): ack without enqueueing again.
    if (wst.code() == StatusCode::kAlreadyExists) return true;
    if (!wst.ok()) {
      ins_.batches_dropped->Increment();
      return false;
    }
  }
  for (const graph::TimedEdge& e : batch) {
    ingested_max_time_ = std::max(ingested_max_time_, e.time);
  }
  ins_.batches_ingested->Increment();
  ins_.edges_ingested->Increment(batch.size());
  qb.edges = std::move(batch);
  qb.ctx = std::move(ctx);
  qb.enqueue_seconds = obs::MonotonicSeconds();
  queue_.push_back(std::move(qb));
  ins_.queue_depth->Set(static_cast<double>(queue_.size()));
  ins_.queue_peak->Max(static_cast<double>(queue_.size()));
  queue_cv_.notify_one();
  return true;
}

Server::Admit StreamServer::TryIngest(std::vector<graph::TimedEdge> batch,
                                      IngestContext ctx) {
  if (!ValidBatch(batch)) {
    ins_.batches_rejected_invalid->Increment();
    return Admit::kRejected;
  }
  const Status inj = fail::Inject("serve.ingest");
  if (!inj.ok()) {
    ins_.batches_rejected_failpoint->Increment();
    return Admit::kRejected;
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (!started_ || stopping_ || dead_) return Admit::kStopped;
  if (queue_.size() >= config_.max_queue_batches) return Admit::kQueueFull;
  QueuedBatch qb;
  if (wal_ != nullptr) {
    const Status wst = AppendToWalLocked(batch, ctx, &qb);
    if (wst.code() == StatusCode::kAlreadyExists) return Admit::kAccepted;
    if (!wst.ok()) {
      ins_.batches_dropped->Increment();
      return Admit::kRejected;
    }
  }
  for (const graph::TimedEdge& e : batch) {
    ingested_max_time_ = std::max(ingested_max_time_, e.time);
  }
  ins_.batches_ingested->Increment();
  ins_.edges_ingested->Increment(batch.size());
  qb.edges = std::move(batch);
  qb.ctx = std::move(ctx);
  qb.enqueue_seconds = obs::MonotonicSeconds();
  queue_.push_back(std::move(qb));
  ins_.queue_depth->Set(static_cast<double>(queue_.size()));
  ins_.queue_peak->Max(static_cast<double>(queue_.size()));
  queue_cv_.notify_one();
  return Admit::kAccepted;
}

void StreamServer::Flush() {
  std::unique_lock<std::mutex> lk(mu_);
  drained_cv_.wait(lk, [&] {
    return (queue_.empty() && !busy_) || stopping_ || dead_;
  });
}

void StreamServer::Stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!started_) return;
    stopping_ = true;
    stop_token_.store(true, std::memory_order_relaxed);
    queue_cv_.notify_all();
    not_full_cv_.notify_all();
    drained_cv_.notify_all();
    checkpoint_done_cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lk(mu_);
  started_ = false;
}

Status StreamServer::last_error() const {
  std::lock_guard<std::mutex> lk(mu_);
  return last_error_;
}

bool StreamServer::running() const {
  std::lock_guard<std::mutex> lk(mu_);
  return started_ && !stopping_ && !dead_;
}

void StreamServer::RecordError(const Status& status) {
  std::lock_guard<std::mutex> lk(mu_);
  if (last_error_.ok()) last_error_ = status;
}

ServerStats StreamServer::stats() const {
  // Pure instrument reads — no lock; every source is an atomic in the
  // registry. Quantiles come from the tick-latency histogram (factor-2
  // worst-case relative error from the log2 bucketing; monotone in p).
  ServerStats s;
  s.warm_ticks = static_cast<int64_t>(ins_.warm_ticks->Value());
  s.cold_ticks = static_cast<int64_t>(ins_.cold_ticks->Value());
  s.ticks = s.warm_ticks + s.cold_ticks;
  s.batches_ingested = static_cast<int64_t>(ins_.batches_ingested->Value());
  s.edges_ingested = static_cast<int64_t>(ins_.edges_ingested->Value());
  s.ingest_blocked = static_cast<int64_t>(ins_.ingest_blocked->Value());
  s.queue_peak = static_cast<size_t>(ins_.queue_peak->Value());
  s.batches_rejected =
      static_cast<int64_t>(ins_.batches_rejected_invalid->Value() +
                           ins_.batches_rejected_failpoint->Value() +
                           ins_.batches_dropped->Value());
  s.ticks_shed = static_cast<int64_t>(ins_.ticks_shed->Value());
  s.degraded_ticks = static_cast<int64_t>(ins_.degraded_ticks->Value());
  s.deadline_overruns =
      static_cast<int64_t>(ins_.deadline_overruns->Value());
  s.tick_retries = static_cast<int64_t>(ins_.tick_retries->Value());
  s.ticks_failed = static_cast<int64_t>(ins_.ticks_failed->Value());
  s.engine_fallbacks = static_cast<int64_t>(ins_.engine_fallbacks->Value());
  s.warm_fallbacks = static_cast<int64_t>(ins_.warm_fallbacks->Value());
  s.cold_refresh_deferred =
      static_cast<int64_t>(ins_.cold_refresh_deferred->Value());
  s.checkpoints_written = static_cast<int64_t>(ins_.checkpoints_ok->Value());
  s.checkpoint_failures =
      static_cast<int64_t>(ins_.checkpoints_failed->Value());
  s.reused_clusters = static_cast<int64_t>(ins_.reused_clusters->Value());
  s.incremental_rebuilds =
      static_cast<int64_t>(ins_.incremental_rebuilds->Value());
  s.last_dirty_components =
      static_cast<int64_t>(ins_.dirty_components->Value());
  s.tick_p50_seconds = ins_.tick_seconds->Quantile(0.50);
  s.tick_p99_seconds = ins_.tick_seconds->Quantile(0.99);
  s.tick_max_seconds = ins_.tick_seconds->MaxBound();
  s.warm_avg_iterations =
      s.warm_ticks == 0
          ? 0
          : static_cast<double>(ins_.warm_iterations->Value()) / s.warm_ticks;
  s.cold_avg_iterations =
      s.cold_ticks == 0
          ? 0
          : static_cast<double>(ins_.cold_iterations->Value()) / s.cold_ticks;
  s.last_ingest_lag_days = ins_.ingest_lag_days->Value();
  return s;
}

bool StreamServer::Backoff(int attempt) {
  double ms = config_.resilience.retry_backoff_ms * std::ldexp(1.0, attempt);
  ms = std::min(ms, config_.resilience.max_retry_backoff_ms);
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(
                         std::chrono::duration<double, std::milli>(ms));
  // Sleep in slices so Stop() stays prompt mid-backoff.
  while (std::chrono::steady_clock::now() < until) {
    if (stop_token_.load(std::memory_order_relaxed)) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return !stop_token_.load(std::memory_order_relaxed);
}

void StreamServer::DetectLoop() {
  for (;;) {
    QueuedBatch qb;
    {
      std::unique_lock<std::mutex> lk(mu_);
      queue_cv_.wait(lk, [&] {
        return stopping_ || !queue_.empty() || checkpoint_requested_;
      });
      if (stopping_) return;
      if (queue_.empty()) {
        // On-demand checkpoint (public WriteCheckpoint): the queue is
        // drained so the detection-thread state is quiescent; write outside
        // the lock and hand the status back to the blocked caller.
        lk.unlock();
        const Status st = DoWriteCheckpoint();
        lk.lock();
        checkpoint_requested_ = false;
        checkpoint_status_ = st;
        checkpoint_done_cv_.notify_all();
        continue;
      }
      qb = std::move(queue_.front());
      queue_.pop_front();
      ins_.queue_depth->Set(static_cast<double>(queue_.size()));
      busy_ = true;
      not_full_cv_.notify_all();
    }
    if (qb.wal_seq > consumed_wal_seq_) consumed_wal_seq_ = qb.wal_seq;
    NoteBatchDequeued(qb, obs::MonotonicSeconds());
    std::vector<graph::TimedEdge> batch = std::move(qb.edges);
    bool keep_running = true;
    // Window append, under the serve.window_append failpoint. The batch is
    // still in hand on an injected failure, so transient faults retry
    // exactly; only exhausted retries drop it (counted, recorded).
    obs::ScopedSpan append_span(
        config_.trace.collect_spans() ? &span_sink_ : nullptr, qb.ctx.trace,
        "serve.window_append");
    if (append_span.active()) {
      append_span.AddLabel("edges", std::to_string(batch.size()));
    }
    Status append_status;
    for (int attempt = 0;; ++attempt) {
      append_status = fail::Inject("serve.window_append");
      if (append_status.ok()) {
        window_.Append(std::move(batch));
        break;
      }
      if (!IsTransient(append_status) ||
          attempt >= config_.resilience.max_tick_retries) {
        break;
      }
      ins_.tick_retries->Increment();
      if (!Backoff(attempt)) {
        append_status = Status::Cancelled("server stopping");
        break;
      }
    }
    append_span.End();
    if (!append_status.ok()) {
      if (append_status.IsCancelled()) {
        // Shutting down; the loop exits via stopping_ above.
      } else if (IsTransient(append_status)) {
        ins_.batches_dropped->Increment();
        RecordError(append_status);
        GLP_LOG(Warning) << "dropping batch after append failures: "
                         << append_status.ToString();
      } else {
        RecordError(append_status);
        GLP_LOG(Error) << "fatal window-append fault: "
                       << append_status.ToString();
        keep_running = false;
      }
    } else {
      keep_running = RunDueTicks();
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      busy_ = false;
      if (!keep_running) {
        // Fatal: wake every blocked producer and Flush() waiter — they see
        // dead_ and return false instead of blocking on a queue nobody
        // will ever drain again.
        dead_ = true;
        not_full_cv_.notify_all();
        drained_cv_.notify_all();
        checkpoint_done_cv_.notify_all();
        return;
      }
      if (queue_.empty()) drained_cv_.notify_all();
    }
  }
}

bool StreamServer::RunDueTicks() {
  if (window_.num_stream_edges() == 0) return true;
  const double cadence = config_.tick.every_days;
  if (!tick_schedule_primed_) {
    // First boundary strictly after the stream's earliest timestamp, on the
    // absolute grid k * cadence — replaying the same stream yields the same
    // tick schedule regardless of batch partitioning.
    next_tick_end_ =
        cadence * (std::floor(window_.min_time() / cadence) + 1.0);
    tick_schedule_primed_ = true;
  }
  while (window_.max_time() >= next_tick_end_) {
    if (stop_token_.load(std::memory_order_relaxed)) return true;
    // Degradation ladder step 3: if the last tick blew its deadline and
    // the stream has already crossed several boundaries, coalesce the
    // overdue ones into a single tick at the newest due boundary.
    if (config_.resilience.tick_deadline_seconds > 0 &&
        last_tick_wall_seconds_ > config_.resilience.tick_deadline_seconds) {
      const auto overdue = static_cast<int64_t>(std::floor(
          (window_.max_time() - next_tick_end_) / cadence));
      if (overdue > 0) {
        ins_.ticks_shed->Increment(static_cast<uint64_t>(overdue));
        next_tick_end_ += static_cast<double>(overdue) * cadence;
      }
    }
    const TickOutcome outcome = RunTick(next_tick_end_);
    if (outcome == TickOutcome::kFatal) return false;
    if (outcome == TickOutcome::kCancelled) return true;
    next_tick_end_ += cadence;
    if (outcome == TickOutcome::kOk && !config_.checkpoint.dir.empty() &&
        config_.checkpoint.every_ticks > 0 &&
        num_ticks_ % config_.checkpoint.every_ticks == 0 &&
        num_ticks_ > last_checkpoint_tick_) {
      (void)DoWriteCheckpoint();
    }
  }
  return true;
}

Status StreamServer::WriteCheckpoint() {
  if (config_.checkpoint.dir.empty()) {
    return Status::InvalidArgument("no checkpoint dir configured");
  }
  std::unique_lock<std::mutex> lk(mu_);
  if (!started_) {
    // No detection thread: the caller owns the state; write inline.
    lk.unlock();
    return DoWriteCheckpoint();
  }
  if (stopping_) return Status::Cancelled("server stopping");
  if (dead_) {
    return last_error_.ok() ? Status::Cancelled("server dead") : last_error_;
  }
  checkpoint_requested_ = true;
  queue_cv_.notify_one();
  checkpoint_done_cv_.wait(lk, [&] {
    return !checkpoint_requested_ || stopping_ || dead_;
  });
  if (checkpoint_requested_) {
    // Shutdown or a fatal fault won the race before the write landed.
    checkpoint_requested_ = false;
    return Status::Cancelled("server stopped before checkpoint");
  }
  return checkpoint_status_;
}

Status StreamServer::DoWriteCheckpoint() {
  CheckpointData data;
  data.tick = num_ticks_;
  data.tick_schedule_primed = tick_schedule_primed_;
  data.next_tick_end = next_tick_end_;
  {
    std::lock_guard<std::mutex> lk(mu_);
    data.ingested_max_time = ingested_max_time_;
  }
  data.edges = window_.edges();
  data.have_prev = have_prev_;
  if (have_prev_) {
    data.prev_l2g = prev_l2g_;
    data.prev_labels = prev_labels_;
  }
  data.prev_confirmed.assign(prev_confirmed_.begin(), prev_confirmed_.end());
  if (config_.tick.incremental && inc_reuse_ok_) {
    // Anchors for exactly the previous snapshot's entities, entity-sorted
    // for deterministic bytes. The union-find itself is rebuilt from the
    // edge stream on restore.
    data.has_incremental = true;
    data.inc_entities = prev_l2g_;
    std::sort(data.inc_entities.begin(), data.inc_entities.end());
    data.inc_anchors.reserve(data.inc_entities.size());
    for (const VertexId e : data.inc_entities) {
      data.inc_anchors.push_back(anchor_of_[e]);
    }
  }
  data.wal_seq = consumed_wal_seq_;
  data.wal_epoch = wal_ != nullptr ? wal_->epoch() : 0;
  const std::string path =
      config_.checkpoint.dir + "/" + CheckpointFileName(num_ticks_);
  const Status st = SaveCheckpoint(path, data);
  if (st.ok()) {
    ins_.checkpoints_ok->Increment();
    last_checkpoint_tick_ = num_ticks_;
    // Best-effort: a failed prune never fails the tick. Checkpoint pruning
    // is WAL-aware (the newest snapshot is the replay base for surviving
    // segments); WAL segments fully covered by this snapshot go next.
    (void)PruneCheckpoints(config_.checkpoint.dir, config_.checkpoint.keep,
                           config_.durability.dir);
    if (wal_ != nullptr) {
      (void)wal_->PruneThrough(data.wal_seq);
      PublishWalStats();
    }
  } else {
    ins_.checkpoints_failed->Increment();
    GLP_LOG(Warning) << "checkpoint at tick " << num_ticks_
                     << " failed: " << st.ToString();
  }
  return st;
}

std::vector<Label> StreamServer::MapWarmLabels(
    const graph::WindowSnapshot& cur) {
  const size_t universe = static_cast<size_t>(window_.max_entity()) + 1;
  auto stamp = [universe](EntityMap* m,
                          const std::vector<VertexId>& l2g) {
    if (m->epoch_of.size() < universe) {
      m->epoch_of.assign(universe, 0);
      m->local_of.resize(universe);
      m->epoch = 0;
    }
    if (++m->epoch == 0) {
      std::fill(m->epoch_of.begin(), m->epoch_of.end(), 0u);
      m->epoch = 1;
    }
    for (size_t i = 0; i < l2g.size(); ++i) {
      m->epoch_of[l2g[i]] = m->epoch;
      m->local_of[l2g[i]] = static_cast<VertexId>(i);
    }
  };
  stamp(&prev_map_, prev_l2g_);
  stamp(&cur_map_, cur.local_to_global);

  // A label is a local vertex id of the window that produced it (LP never
  // invents ids). Anchor each carried-over entity's previous label to its
  // global entity, then re-express it as that entity's local id in the new
  // window; entities new to the window (or whose anchor left it) start as
  // cold singletons.
  std::vector<Label> init(cur.local_to_global.size());
  for (size_t v = 0; v < cur.local_to_global.size(); ++v) {
    const VertexId g = cur.local_to_global[v];
    Label out = static_cast<Label>(v);
    if (prev_map_.epoch_of[g] == prev_map_.epoch) {
      const Label pl = prev_labels_[prev_map_.local_of[g]];
      if (pl != graph::kInvalidLabel &&
          static_cast<size_t>(pl) < prev_l2g_.size()) {
        const VertexId anchor = prev_l2g_[pl];
        if (cur_map_.epoch_of[anchor] == cur_map_.epoch) {
          out = static_cast<Label>(cur_map_.local_of[anchor]);
        }
      }
    }
    init[v] = out;
  }
  return init;
}

pipeline::DetectDelta StreamServer::BuildDetectDelta(
    const graph::WindowSnapshot& cur, bool extract_all, bool* ok) {
  pipeline::DetectDelta dd;
  dd.extract_all = extract_all;
  *ok = true;

  // Stamp the current snapshot's entity -> local-id map (same epoch trick
  // as MapWarmLabels; cur_map_ is shared scratch between them).
  const size_t universe = static_cast<size_t>(window_.max_entity()) + 1;
  EntityMap* m = &cur_map_;
  if (m->epoch_of.size() < universe) {
    m->epoch_of.assign(universe, 0);
    m->local_of.resize(universe);
    m->epoch = 0;
  }
  if (++m->epoch == 0) {
    std::fill(m->epoch_of.begin(), m->epoch_of.end(), 0u);
    m->epoch = 1;
  }
  for (size_t i = 0; i < cur.local_to_global.size(); ++i) {
    m->epoch_of[cur.local_to_global[i]] = m->epoch;
    m->local_of[cur.local_to_global[i]] = static_cast<VertexId>(i);
  }

  const size_t n = cur.local_to_global.size();
  dd.dirty.resize(n);
  dd.clean_labels.assign(n, 0);
  for (size_t v = 0; v < n; ++v) {
    const VertexId g = cur.local_to_global[v];
    const bool dirty = inc_tracker_.IsDirty(g);
    dd.dirty[v] = dirty ? 1 : 0;
    if (dirty) {
      dd.clean_labels[v] = static_cast<Label>(v);  // defined but unread
      continue;
    }
    // A clean vertex keeps its previous-tick label: the anchor entity of
    // its component, re-expressed as a current local id. A clean component
    // is unchanged since last tick, so its anchor must still be in the
    // window; any miss means the carried-over state is inconsistent and the
    // caller takes the full (always-correct) path.
    const VertexId anchor =
        static_cast<size_t>(g) < anchor_of_.size() ? anchor_of_[g]
                                                   : graph::kInvalidVertex;
    if (anchor == graph::kInvalidVertex ||
        static_cast<size_t>(anchor) >= universe ||
        m->epoch_of[anchor] != m->epoch) {
      *ok = false;
      return dd;
    }
    dd.clean_labels[v] = static_cast<Label>(m->local_of[anchor]);
  }

  if (!extract_all) {
    for (const ClusterRecord& rec : records_) {
      if (rec.cluster.members.empty() ||
          inc_tracker_.IsDirty(rec.cluster.members[0])) {
        continue;  // component changed (or left): record is stale
      }
      if (static_cast<size_t>(rec.label_anchor) >= universe ||
          m->epoch_of[rec.label_anchor] != m->epoch) {
        *ok = false;
        return dd;
      }
      pipeline::SuspiciousCluster c = rec.cluster;
      c.label = static_cast<Label>(m->local_of[rec.label_anchor]);
      dd.reused.push_back(std::move(c));
    }
  }
  return dd;
}

StreamServer::TickOutcome StreamServer::RunTick(double end_time) {
  glp::Timer tick_timer;
  const double tick_start_mono = obs::MonotonicSeconds();
  const double host_start =
      config_.profiler != nullptr ? config_.profiler->HostNow() : 0;

  // Mint this tick's trace: a fresh deterministic id (seeded sampler), the
  // head-based sampling verdict, and — when span collection is on — the
  // root span every child of this tick parents to. Sampled ticks mark
  // their log lines with trace=<id> for the tick's duration.
  const bool collect = config_.trace.collect_spans();
  if (config_.trace.enabled()) {
    tick_trace_ = sampler_.StartTrace();
  } else {
    tick_trace_ = obs::SpanContext{};
  }
  tick_root_span_ = collect ? span_sink_.NewSpanId() : 0;
  const obs::SpanContext root_ctx{tick_trace_.trace_id, tick_root_span_,
                                  tick_trace_.sampled};
  struct LogTraceScope {
    uint64_t prev = glp::GetLogTraceId();
    ~LogTraceScope() { glp::SetLogTraceId(prev); }
  } log_trace_scope;
  if (tick_trace_.sampled) glp::SetLogTraceId(tick_trace_.trace_id);

  TickResult tr;
  tr.tick = num_ticks_;
  tr.window_end = end_time;
  tr.window_start = end_time - config_.detect.window_days;

  obs::ScopedSpan advance_span(collect ? &span_sink_ : nullptr, root_ctx,
                               "serve.window_advance");
  glp::Timer build_timer;
  graph::WindowDelta delta;
  const graph::WindowSnapshot& snap = config_.tick.incremental
                                          ? cursor_.AdvanceTo(end_time, &delta)
                                          : cursor_.AdvanceTo(end_time);
  const double build_seconds = build_timer.Seconds();
  advance_span.End();

  // Degradation ladder steps 1–2: a previous-tick deadline overrun caps LP
  // iterations and postpones a due cold refresh until pressure clears.
  // (Incremental mode has no warm/refresh machinery — every tick is exact.)
  const bool degraded =
      config_.resilience.tick_deadline_seconds > 0 &&
      last_tick_wall_seconds_ > config_.resilience.tick_deadline_seconds;
  bool refresh_due =
      !config_.tick.incremental && config_.tick.cold_refresh_every_ticks > 0 &&
      num_ticks_ % config_.tick.cold_refresh_every_ticks == 0;
  if (!config_.tick.incremental && config_.tick.warm_start && have_prev_) {
    if (degraded && (refresh_due || refresh_pending_)) {
      if (refresh_due) ins_.cold_refresh_deferred->Increment();
      refresh_pending_ = true;
      refresh_due = false;
    } else if (!degraded && refresh_pending_) {
      refresh_due = true;
      refresh_pending_ = false;
    }
  }
  if (degraded) ins_.degraded_ticks->Increment();

  const bool warm_wanted = !config_.tick.incremental && config_.tick.warm_start &&
                           have_prev_ && !refresh_due &&
                           snap.graph.num_vertices() > 0;

  // Incremental connectivity update — unconditional, even on an empty
  // window (connectivity is a function of the window alone, not of how
  // this tick's LP goes; skipping the tick that expired the last edges
  // would leave the tracker permanently stale). An inexact cursor delta or
  // a fired serve.incremental_rebuild failpoint falls back to a
  // from-scratch rebuild with everything dirty: slower, never wrong.
  bool delta_applied = false;
  if (config_.tick.incremental) {
    obs::ScopedSpan uf_span(collect ? &span_sink_ : nullptr, root_ctx,
                            "serve.union_find");
    const bool force_rebuild =
        !fail::Inject("serve.incremental_rebuild").ok();
    if (delta.exact && !force_rebuild) {
      inc_tracker_.ApplyDelta(window_.edges(), delta);
      delta_applied = true;
    } else {
      inc_tracker_.RebuildAll(window_.edges(), cursor_.lo(), cursor_.hi());
      ins_.incremental_rebuilds->Increment();
    }
    ins_.dirty_components->Set(
        static_cast<double>(inc_tracker_.NumDirtyComponents()));
    if (uf_span.active()) {
      uf_span.AddLabel("mode", delta_applied ? "delta" : "rebuild");
    }
  }
  // The delta path additionally needs trustworthy carried-over state: not
  // right after an abandoned/degraded/empty tick, and not on a degraded
  // tick (its iteration cap breaks the exactness argument).
  bool delta_ok = delta_applied && inc_reuse_ok_ && !degraded;
  pipeline::DetectDelta dd;
  if (delta_ok) {
    bool dd_ok = true;
    dd = BuildDetectDelta(snap, /*extract_all=*/!records_valid_, &dd_ok);
    if (!dd_ok) delta_ok = false;
  }

  if (snap.graph.num_vertices() > 0) {
    // Retry ladder: attempt 0 as configured, attempt 1 an unchanged retry,
    // attempt 2 cold (the warm state is suspect), final attempt on the
    // fallback engine. Only transient Status codes walk the ladder.
    const int max_attempts = 1 + std::max(0, config_.resilience.max_tick_retries);
    bool ran = false;
    Status failure;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      pipeline::PipelineConfig cfg = config_.detect;
      if (degraded) {
        cfg.lp.max_iterations =
            std::min(cfg.lp.max_iterations, config_.resilience.degraded_iteration_cap);
        cfg.lp.stop_when_stable = true;
      }
      const bool warm = warm_wanted && attempt <= 1;
      if (warm_wanted && !warm) ins_.warm_fallbacks->Increment();
      if (warm) cfg.lp.initial_labels = MapWarmLabels(snap);
      // The delta path follows the warm-start retry shape: attempts 0–1 use
      // it, later attempts run the full (still canonical) detection in case
      // the carried-over state is what keeps failing.
      const bool use_delta = delta_ok && attempt <= 1;
      if (attempt == max_attempts - 1 && attempt > 0 &&
          config_.resilience.enable_engine_fallback) {
        cfg.engine = config_.resilience.fallback_engine;
        ins_.engine_fallbacks->Increment();
      }

      obs::ScopedSpan attempt_span(collect ? &span_sink_ : nullptr, root_ctx,
                                   "serve.detect");
      if (attempt_span.active()) {
        attempt_span.AddLabel("attempt", std::to_string(attempt));
        attempt_span.AddLabel("warm", warm ? "1" : "0");
      }

      lp::RunContext ctx;
      ctx.profiler = config_.profiler;
      ctx.pool = config_.pool;
      ctx.stop_token = &stop_token_;
      ctx.metrics = registry_;
      ctx.trace_sink = collect ? &span_sink_ : nullptr;
      ctx.trace_id = tick_trace_.trace_id;
      ctx.trace_parent_span =
          attempt_span.active() ? attempt_span.context().span_id : 0;

      Status st = fail::Inject("serve.tick");
      if (st.ok()) {
        auto result = pipeline::DetectOnSnapshot(
            snap, cfg, ctx, config_.seeds, config_.ground_truth,
            tr.window_start, tr.window_end, use_delta ? &dd : nullptr);
        if (result.ok()) {
          tr.detection = std::move(result).value();
          tr.warm = warm;
          if (use_delta && !dd.extract_all) {
            ins_.reused_clusters->Increment(
                static_cast<uint64_t>(dd.reused.size()));
          }
          if (config_.record_warm_labels) {
            tr.warm_labels = std::move(cfg.lp.initial_labels);
          }
          ran = true;
          break;
        }
        st = result.status();
      }
      if (attempt_span.active()) {
        attempt_span.AddLabel("error", st.ToString());
        attempt_span.End();
      }
      if (st.IsCancelled()) {
        FinishTickTrace(tr.tick, end_time, "cancelled", tick_start_mono,
                        tick_timer.Seconds(), /*dump=*/false);
        return TickOutcome::kCancelled;
      }
      if (!IsTransient(st)) {
        RecordError(st);
        GLP_LOG(Error) << "fatal detection fault at window end " << end_time
                       << ": " << st.ToString();
        FinishTickTrace(tr.tick, end_time, "fatal", tick_start_mono,
                        tick_timer.Seconds(), /*dump=*/true);
        return TickOutcome::kFatal;
      }
      failure = st;
      if (attempt + 1 < max_attempts) {
        ins_.tick_retries->Increment();
        if (!Backoff(attempt)) {
          FinishTickTrace(tr.tick, end_time, "cancelled", tick_start_mono,
                          tick_timer.Seconds(), /*dump=*/false);
          return TickOutcome::kCancelled;
        }
      }
    }
    if (!ran) {
      RecordError(failure);
      ins_.ticks_failed->Increment();
      // The warm state may itself be what keeps failing; next tick starts
      // cold from scratch.
      have_prev_ = false;
      inc_reuse_ok_ = false;
      records_valid_ = false;
      records_.clear();
      GLP_LOG(Warning) << "tick at window end " << end_time
                       << " abandoned after " << max_attempts
                       << " attempts: " << failure.ToString();
      FinishTickTrace(tr.tick, end_time, "abandoned", tick_start_mono,
                      tick_timer.Seconds(), /*dump=*/true);
      return TickOutcome::kAbandoned;
    }
    tr.detection.build_seconds = build_seconds;
    prev_l2g_ = snap.local_to_global;
    prev_labels_ = tr.detection.lp.labels;
    have_prev_ = true;
    if (config_.tick.incremental) {
      if (!degraded) {
        // Every successful non-degraded tick publishes canonical labels —
        // whether via the delta path (by the §4.10 exactness argument) or a
        // full run — so the anchors and the cluster-record cache are simply
        // refreshed from the published output.
        const size_t universe = static_cast<size_t>(window_.max_entity()) + 1;
        if (anchor_of_.size() < universe) {
          anchor_of_.resize(universe, graph::kInvalidVertex);
        }
        for (size_t v = 0; v < snap.local_to_global.size(); ++v) {
          const Label l = tr.detection.lp.labels[v];
          anchor_of_[snap.local_to_global[v]] =
              static_cast<size_t>(l) < snap.local_to_global.size()
                  ? snap.local_to_global[l]
                  : graph::kInvalidVertex;
        }
        records_.clear();
        records_.reserve(tr.detection.clusters.size());
        for (const pipeline::SuspiciousCluster& c : tr.detection.clusters) {
          records_.push_back({c, snap.local_to_global[c.label]});
        }
        inc_reuse_ok_ = true;
        records_valid_ = true;
      } else {
        // Degraded ticks are iteration-capped and may publish non-canonical
        // labels; nothing from them may seed the next tick's reuse.
        inc_reuse_ok_ = false;
        records_valid_ = false;
        records_.clear();
      }
    }
  } else {
    // Empty window: nothing to cluster; previously confirmed clusters all
    // expire below.
    have_prev_ = false;
    inc_reuse_ok_ = false;
    records_valid_ = false;
    records_.clear();
  }

  // Diff confirmed clusters against the previous tick (clusters keyed by
  // their sorted global member lists).
  obs::ScopedSpan diff_span(collect ? &span_sink_ : nullptr, root_ctx,
                            "serve.diff_confirmed");
  std::set<std::vector<VertexId>> confirmed_now;
  for (const pipeline::SuspiciousCluster& c : tr.detection.clusters) {
    if (c.confirmed) confirmed_now.insert(c.members);
  }
  for (const auto& members : confirmed_now) {
    if (prev_confirmed_.count(members) == 0) {
      tr.new_confirmed.push_back(members);
    }
  }
  for (const auto& members : prev_confirmed_) {
    if (confirmed_now.count(members) == 0) {
      tr.expired_confirmed.push_back(members);
    }
  }
  prev_confirmed_ = std::move(confirmed_now);
  if (diff_span.active()) {
    diff_span.AddLabel("new_confirmed",
                       std::to_string(tr.new_confirmed.size()));
  }
  diff_span.End();

  tr.tick_wall_seconds = tick_timer.Seconds();
  last_tick_wall_seconds_ = tr.tick_wall_seconds;
  const bool overrun =
      config_.resilience.tick_deadline_seconds > 0 &&
      tr.tick_wall_seconds > config_.resilience.tick_deadline_seconds;
  if (overrun) ins_.deadline_overruns->Increment();
  {
    std::lock_guard<std::mutex> lk(mu_);
    tr.ingest_lag_days = ingested_max_time_ - end_time;
  }
  ins_.ingest_lag_days->Set(tr.ingest_lag_days);
  // Sampled ticks attach their trace id as the latency bucket's exemplar —
  // a tick_seconds spike on /metrics links straight to its span tree.
  ins_.tick_seconds->ObserveWithExemplar(
      tr.tick_wall_seconds, tick_trace_.sampled ? tick_trace_.trace_id : 0);
  ObserveFreshness(tr);
  if (tr.warm) {
    ins_.warm_ticks->Increment();
    ins_.warm_iterations->Increment(
        static_cast<uint64_t>(tr.detection.lp.iterations));
  } else {
    ins_.cold_ticks->Increment();
    ins_.cold_iterations->Increment(
        static_cast<uint64_t>(tr.detection.lp.iterations));
  }
  if (config_.profiler != nullptr) {
    config_.profiler->RecordHostEvent(tr.warm ? "tick-warm" : "tick-cold",
                                      host_start, tr.tick_wall_seconds);
  }
  ++num_ticks_;
  {
    obs::ScopedSpan publish_span(collect ? &span_sink_ : nullptr, root_ctx,
                                 "serve.publish");
    for (const Subscriber& s : subscribers_) s(tr);
  }
  FinishTickTrace(tr.tick, end_time, overrun ? "ok+deadline_overrun" : "ok",
                  tick_start_mono, tr.tick_wall_seconds, /*dump=*/overrun);
  return TickOutcome::kOk;
}

void StreamServer::NoteBatchDequeued(const QueuedBatch& qb,
                                     double pop_seconds) {
  if (config_.trace.collect_spans()) {
    // The queue-wait span carries the *client's* trace context (when the
    // batch arrived with one) — in the tick's tree it is the visible splice
    // between the wire trace and the server-minted tick trace.
    obs::Span s;
    s.trace_id = qb.ctx.trace.trace_id;
    s.span_id = span_sink_.NewSpanId();
    s.parent_span_id = qb.ctx.trace.span_id;
    s.name = "serve.queue_wait";
    s.start_seconds = qb.enqueue_seconds;
    s.duration_seconds = std::max(0.0, pop_seconds - qb.enqueue_seconds);
    if (!qb.ctx.tenant.empty()) s.labels.emplace_back("tenant", qb.ctx.tenant);
    s.labels.emplace_back("edges", std::to_string(qb.edges.size()));
    span_sink_.Add(std::move(s));
  }
  if (qb.ctx.arrival_seconds >= 0 && !qb.edges.empty()) {
    FreshnessMeta meta;
    meta.tenant = qb.ctx.tenant.empty() ? "default" : qb.ctx.tenant;
    meta.arrival_seconds = qb.ctx.arrival_seconds;
    // Exemplars only link sampled traces; the measurement itself is
    // recorded for every stamped batch.
    meta.trace_id = qb.ctx.trace.sampled ? qb.ctx.trace.trace_id : 0;
    meta.entities.reserve(qb.edges.size() * 2);
    for (const graph::TimedEdge& e : qb.edges) {
      meta.entities.push_back(e.src);
      meta.entities.push_back(e.dst);
    }
    std::sort(meta.entities.begin(), meta.entities.end());
    meta.entities.erase(
        std::unique(meta.entities.begin(), meta.entities.end()),
        meta.entities.end());
    if (pending_freshness_.size() >= kMaxPendingFreshness) {
      pending_freshness_.erase(pending_freshness_.begin());
    }
    pending_freshness_.push_back(std::move(meta));
  }
}

obs::Histogram* StreamServer::FreshnessHistogram(const std::string& tenant) {
  auto it = freshness_hist_.find(tenant);
  if (it != freshness_hist_.end()) return it->second;
  obs::Histogram* h = registry_->GetHistogram(
      "glp_serve_freshness_seconds",
      "Wire arrival to confirmed-cluster publish, per tenant",
      {{"tenant", tenant}});
  freshness_hist_.emplace(tenant, h);
  return h;
}

void StreamServer::ObserveFreshness(const TickResult& tr) {
  if (pending_freshness_.empty() || tr.new_confirmed.empty()) return;
  std::vector<VertexId> confirmed;
  for (const auto& members : tr.new_confirmed) {
    confirmed.insert(confirmed.end(), members.begin(), members.end());
  }
  std::sort(confirmed.begin(), confirmed.end());
  const double now = obs::MonotonicSeconds();
  size_t kept = 0;
  for (FreshnessMeta& m : pending_freshness_) {
    // Sorted-merge intersection test: does any of the batch's endpoints
    // sit in a cluster confirmed this tick?
    bool hit = false;
    for (size_t i = 0, j = 0;
         i < m.entities.size() && j < confirmed.size();) {
      if (m.entities[i] < confirmed[j]) {
        ++i;
      } else if (confirmed[j] < m.entities[i]) {
        ++j;
      } else {
        hit = true;
        break;
      }
    }
    if (hit) {
      FreshnessHistogram(m.tenant)->ObserveWithExemplar(
          std::max(0.0, now - m.arrival_seconds), m.trace_id);
    } else {
      pending_freshness_[kept++] = std::move(m);
    }
  }
  pending_freshness_.resize(kept);
}

void StreamServer::FinishTickTrace(int64_t tick, double end_time,
                                   const char* outcome, double start_seconds,
                                   double wall_seconds, bool dump) {
  if (!config_.trace.collect_spans() || recorder_ == nullptr) {
    tick_trace_ = obs::SpanContext{};
    tick_root_span_ = 0;
    return;
  }
  obs::TickTrace t;
  t.tick = tick;
  t.window_end = end_time;
  t.outcome = outcome;
  t.tick_wall_seconds = wall_seconds;
  t.spans = span_sink_.Drain();
  obs::Span root;
  root.trace_id = tick_trace_.trace_id;
  root.span_id = tick_root_span_;
  root.name = "serve.tick";
  root.start_seconds = start_seconds;
  root.duration_seconds = wall_seconds;
  t.spans.insert(t.spans.begin(), std::move(root));
  recorder_->Record(std::move(t));
  if (dump) {
    GLP_LOG(Warning) << "tick " << tick << " " << outcome
                     << "; flight-recorder dump: "
                     << recorder_->LastTickJson();
  }
  tick_trace_ = obs::SpanContext{};
  tick_root_span_ = 0;
}

}  // namespace glp::serve
