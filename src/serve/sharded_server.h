// glp::serve::ShardedStreamServer — multi-shard scale-out of the streaming
// detection server (DESIGN.md §4.9).
//
// Entities are partitioned across N shards by a versioned
// pipeline::PartitionMap (the same assignment the distributed cost model
// prices). Each shard owns a partitioned SlidingWindow holding the edges
// whose *source* maps to it; an edge whose endpoints map to different
// shards is mirrored into both, so every shard sees its full local
// neighborhood — the boundary-mirroring scheme Gunrock-style multi-device
// frameworks use. The shard count is *elastic*: Resize() migrates the
// fleet to a new shape live (DESIGN.md §4.14), and checkpoints restore
// across shapes (an N-shard snapshot re-partitions onto M shards).
//
//   Ingest(batch) --route by PartitionOf--> bounded queue of routed batches
//                                             coordinator thread
//                                               parallel per-shard Append
//                                               per-shard union-find [lo,hi)
//                                               boundary stitch (global UF)
//                                               component -> owner shard
//                                               parallel per-owner detection
//                                               stitched confirmed-cluster
//                                                 diff -> subscribers
//
// Why components, not raw subgraphs: label propagation on a shard's
// mirrored subgraph is NOT equivalent to global LP — labels keep crossing
// the boundary every iteration, and a one-hop halo cannot carry that. What
// *is* exactly decomposable is connectivity: labels never cross connected
// components, and per-component LP is order-isomorphic to the global run
// (local ids preserve canonical first-appearance order, so every MFL
// tie-break resolves identically). The per-shard union-finds + the
// boundary-entity stitch compute global components cheaply in parallel;
// whole components are then assigned to owner shards
// (PartitionOf(min-entity)) and detected in parallel. This is what makes
// the N-shard replay produce exactly the 1-shard confirmed clusters (up to
// cluster renumbering) on cold ticks — a correctness-checkable scale-out
// rather than an approximate one. Warm starts use a global entity-anchored
// label map; they are internally consistent but can differ from 1-shard
// warm runs when an anchor migrates across components (see DESIGN.md).
//
// Resilience matches StreamServer per shard: the serve.* failpoints fire on
// the routed-ingest/append/tick paths (ticks once per owner shard), each
// owner detection walks the same transient-retry ladder (retry -> drop warm
// -> fallback engine), the deadline degradation ladder arms per tick, and
// checkpoints are per-shard files sealed by a manifest so the fleet
// restores atomically (serve/checkpoint.h).

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "graph/sliding_window.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pipeline/partition.h"
#include "pipeline/pipeline.h"
#include "serve/incremental.h"
#include "serve/server.h"
#include "util/status.h"

namespace glp::serve {

/// \brief N-shard streaming detection server.
///
/// Same external contract as StreamServer — Subscribe/Start/Ingest/Flush/
/// Stop, TickResult ticks on the same absolute grid, ServerStats over the
/// same glp_serve_* instruments — plus per-shard glp_serve_shard_* metric
/// families labeled {shard="k"}. TickResult::detection is the stitched
/// aggregate: clusters carry globally renumbered labels (dense, assigned in
/// sorted-member order) and lp.labels is left empty (there is no global
/// local-id space to express per-vertex labels in).
class ShardedStreamServer : public Server {
 public:
  /// `config` is the regular per-server configuration; detection,
  /// resilience, and checkpoint knobs apply fleet-wide.
  ShardedStreamServer(ServerConfig config, int num_shards);
  ~ShardedStreamServer() override;

  ShardedStreamServer(const ShardedStreamServer&) = delete;
  ShardedStreamServer& operator=(const ShardedStreamServer&) = delete;

  int num_shards() const override {
    return num_shards_.load(std::memory_order_acquire);
  }

  wal::Wal* wal() const override { return wal_.get(); }

  /// Registers a per-tick callback (coordinator thread, tick order). Must
  /// be called before Start().
  void Subscribe(Subscriber subscriber) override;

  /// Restores the fleet from the newest *complete* checkpoint in `dir`
  /// (or an explicit manifest/checkpoint path). All-or-nothing: a missing
  /// or corrupt shard file falls back to the previous complete set.
  /// Checkpoints are shape-portable: a snapshot taken on any fleet size —
  /// including a flat StreamServer file — restores here, re-partitioned
  /// under this fleet's map, and the WAL tail (batches after the
  /// snapshot) replays routed under the *current* map with seq-based
  /// duplicate suppression, so no edge is lost or duplicated across the
  /// re-route. Must be called before Start(). RestoreInfo::num_edges
  /// counts *global* stream edges (mirrors excluded) — the replay resume
  /// index, same contract as StreamServer.
  Result<RestoreInfo> RestoreFromCheckpoint(
      const std::string& path_or_dir) override;

  /// Live fleet resize (DESIGN.md §4.14): quiesce → re-partition → resume
  /// on the coordinator thread, preserving the subscriber diff stream
  /// unbroken. Before Start() the migration runs inline (offline
  /// re-shape). Aborts — including the armed "serve.reshard" failpoint —
  /// happen before the commit point and leave the old shape fully intact;
  /// retry is always safe.
  Status Resize(int new_num_shards) override;

  /// Launches the coordinator thread.
  Status Start() override;

  using Server::Ingest;
  using Server::TryIngest;

  /// Validates and routes a batch to shard sub-batches, then enqueues the
  /// routed batch (bounded queue, blocking backpressure). Returns false if
  /// the batch is rejected or the server is stopped/dead. `ctx` rides the
  /// routed batch through the queue and across the shard sub-batch fan-out
  /// to the tick that consumes it.
  bool Ingest(std::vector<graph::TimedEdge> batch, IngestContext ctx) override;

  /// Non-blocking Ingest: sheds (kQueueFull) instead of waiting on a full
  /// queue. See Server::TryIngest.
  Admit TryIngest(std::vector<graph::TimedEdge> batch,
                  IngestContext ctx) override;

  /// Blocks until every ingested batch is processed and due ticks ran.
  void Flush() override;

  /// Stops the coordinator (cancels in-flight LP via the stop token).
  void Stop() override;

  /// On-demand fleet snapshot — see Server::WriteCheckpoint.
  Status WriteCheckpoint() override;

  /// First fatal error, if any (same semantics as StreamServer).
  Status last_error() const override;
  bool running() const override;

  ServerStats stats() const override;
  obs::MetricRegistry* metrics() const override { return registry_; }

  /// Flight recorder over completed coordinator ticks — see
  /// Server::flight_recorder. Null unless trace.recorder_ticks > 0.
  const obs::FlightRecorder* flight_recorder() const override {
    return recorder_.get();
  }

 private:
  /// One ingest batch split into per-shard sub-batches (owned edges plus
  /// mirrored cross-shard copies). Carries the producer's IngestContext
  /// across the fan-out: the trace context and arrival stamp describe the
  /// whole wire batch, whichever shards its edges landed on.
  struct RoutedBatch {
    std::vector<std::vector<graph::TimedEdge>> parts;
    size_t global_edges = 0;  ///< pre-mirroring edge count
    /// Per-shard owned / mirrored-copy counts (telemetry).
    std::vector<uint64_t> routed;
    std::vector<uint64_t> mirrored;
    IngestContext ctx;
    double enqueue_seconds = 0;  ///< obs::MonotonicSeconds() at enqueue
    /// WAL sequence of the *pre-routing* global batch (0 = WAL disabled).
    /// The log stores the original wire batch; replay re-routes it, which
    /// reproduces the same parts deterministically.
    uint64_t wal_seq = 0;
    /// Version of the partition map that routed `parts`. Producers route
    /// outside the lock; if a live resize lands in between, the version
    /// mismatch under the lock triggers a re-route under the new map.
    uint64_t map_version = 0;
  };

  /// A wire batch awaiting its confirmed-cluster publish (freshness SLO) —
  /// same bookkeeping as StreamServer, keyed on the batch's global entity
  /// set (mirrors dedup away in the sorted-unique endpoint list).
  struct FreshnessMeta {
    std::string tenant;
    double arrival_seconds = 0;
    uint64_t trace_id = 0;  ///< exemplar link; 0 when unsampled
    std::vector<graph::VertexId> entities;  ///< sorted unique endpoints
  };

  enum class TickOutcome { kOk, kAbandoned, kCancelled, kFatal };

  /// Epoch-stamped entity interning scratch, reusable across ticks.
  struct EntityIntern {
    std::vector<uint32_t> epoch_of;
    std::vector<graph::VertexId> local_of;
    uint32_t epoch = 0;

    void EnsureUniverse(size_t universe);
    void Bump();
    bool Has(graph::VertexId g) const { return epoch_of[g] == epoch; }
    graph::VertexId Intern(graph::VertexId g,
                           std::vector<graph::VertexId>* entities);
  };

  /// Per-shard tick scratch: window range, interned active entities, and
  /// the shard-local union-find over them.
  struct ShardScratch {
    size_t lo = 0, hi = 0;
    EntityIntern intern;
    std::vector<graph::VertexId> entities;  ///< local -> entity
    std::vector<graph::VertexId> uf;        ///< local -> parent local
    /// Edges this shard contributes to each owner (src-owned copies only,
    /// canonical order within each bucket).
    std::vector<std::vector<graph::TimedEdge>> owner_buckets;
  };

  /// Per-owner tick workspace and results.
  struct OwnerWork {
    std::vector<graph::TimedEdge> edges;  ///< merged canonical order
    std::vector<graph::TimedEdge> merge_tmp;
    graph::SlidingWindow::Scratch scratch;
    graph::WindowSnapshot snap;
    pipeline::PipelineResult result;
    Status status;
    TickOutcome outcome = TickOutcome::kOk;
    bool ran = false;   ///< detection produced a result this tick
    bool warm = false;  ///< the successful attempt was warm-started
    double wall_seconds = 0;
    int64_t num_components = 0;
    int64_t reused = 0;  ///< clusters reused verbatim (incremental delta)
  };

  glp::ThreadPool* pool() const;
  void DetectLoop();
  bool RunDueTicks();
  TickOutcome RunTick(double end_time);
  /// Computes shard k's window range and local connected components.
  void ShardComponents(int k, double start_time, double end_time);
  /// Serial boundary stitch: merges shard-local components into global
  /// ones over shared entities, then assigns each component an owner
  /// shard. Returns the number of components per owner.
  void StitchComponents();
  /// Scatters shard k's src-owned window edges into per-owner buckets.
  void BucketShardEdges(int k);
  /// Merges owner o's buckets, builds its snapshot (+ warm labels), and
  /// runs detection through the retry/degradation ladder. With `use_delta`
  /// set, builds a pipeline::DetectDelta from the fleet tracker's exported
  /// dirty flags so LP runs only on this owner's dirty components.
  void RunOwnerDetection(int o, double window_start, double window_end,
                         bool degraded, bool warm_wanted, bool use_delta);
  /// Incremental mode: advances every shard's range cursor and updates the
  /// fleet-wide union-find — by per-shard deltas when all are exact (and
  /// the serve.incremental_rebuild failpoint stays quiet), by a full
  /// multi-window rebuild otherwise. Sets shards_[k].{lo,hi} and refreshes
  /// owner_of_ for dirty components. Returns whether the delta path ran.
  bool UpdateIncrementalTracker(double start_time, double end_time);
  /// Full owner_of_ recompute from the tracker (rebuild/restore paths):
  /// owner = pmap_->PartOf(component min entity), plus per-owner
  /// component counts for the components_owned gauges.
  void RefreshOwnersFromTracker();
  bool ValidBatch(const std::vector<graph::TimedEdge>& batch) const;
  /// Routes a validated batch into per-shard sub-batches under `map`
  /// (mirroring cross-shard edges); shared by Ingest, TryIngest, WAL
  /// replay, and migration re-routing. Reads `batch` without consuming it
  /// so a racing resize can re-route from the original.
  RoutedBatch RouteBatch(const std::vector<graph::TimedEdge>& batch,
                         const pipeline::PartitionMap& map) const;
  /// The migration itself: quiesce point already reached (coordinator
  /// thread with an empty-or-owned queue, or pre-Start caller). Builds the
  /// target shape off to the side, then commits it under mu_ — any
  /// failure (or the "serve.reshard" failpoint) before that leaves the
  /// old shape untouched. Re-routes still-queued batches, rebuilds
  /// cursors/scratch/incremental tracker, re-registers per-shard
  /// instruments, and writes a fresh checkpoint of the new shape (the
  /// durable commit point).
  Status MigrateToShardCount(int target);
  /// Heat-driven automatic resize decision (ReshardPolicy), evaluated on
  /// the coordinator thread after successful ticks.
  void MaybeAutoReshard();
  /// Grows shard_ins_ (and the per-shard metric families) to cover n
  /// shards; gauges of shards beyond the live count are zeroed.
  void EnsureShardInstruments(int n);
  bool Backoff(int attempt);
  void RecordError(const Status& status);
  /// Builds and writes one fleet snapshot (coordinator-thread state).
  Status DoWriteCheckpoint();
  /// Opens the WAL per DurabilityPolicy (idempotent; no-op when disabled).
  Status EnsureWalOpen();
  /// Appends the pre-routing global batch under mu_ and stamps
  /// rb->wal_seq. Same contract as StreamServer::AppendToWalLocked.
  Status AppendToWalLocked(const std::vector<graph::TimedEdge>& batch,
                           const IngestContext& ctx, RoutedBatch* rb);
  /// Publishes the Wal's internal counters into the registry instruments.
  void PublishWalStats();
  /// Records the batch's queue-wait span (client trace context) and
  /// stashes its freshness metadata when the arrival stamp is present.
  void NoteBatchDequeued(const RoutedBatch& rb, double pop_seconds);
  /// Matches pending freshness entries against this tick's newly confirmed
  /// clusters and observes glp_serve_freshness_seconds per tenant.
  void ObserveFreshness(const TickResult& tr);
  /// Seals the current tick's trace: drains collected spans, prepends the
  /// root serve.tick span, records into the flight recorder, and dumps the
  /// tick JSON to the log when `dump` is set.
  void FinishTickTrace(int64_t tick, double window_end, const char* outcome,
                       double start_seconds, double wall_seconds, bool dump);
  obs::Histogram* FreshnessHistogram(const std::string& tenant);

  ServerConfig config_;
  /// Live shard count. Written only at construction and at a migration
  /// commit (under mu_); atomic so num_shards() and producer-side checks
  /// read it without the lock.
  std::atomic<int> num_shards_;
  /// The routing map (never null). Swapped only at a migration commit
  /// under mu_; producers snapshot the shared_ptr under mu_ and route
  /// outside it, the coordinator reads it freely (it is the only writer).
  std::shared_ptr<const pipeline::PartitionMap> pmap_;
  std::vector<Subscriber> subscribers_;

  // Coordinator-thread state.
  std::vector<graph::SlidingWindow> windows_;
  uint64_t global_edges_ = 0;  ///< stream edges appended (mirrors excluded)
  bool tick_schedule_primed_ = false;
  double next_tick_end_ = 0;
  int64_t num_ticks_ = 0;
  double last_tick_wall_seconds_ = 0;
  bool refresh_pending_ = false;
  int64_t last_checkpoint_tick_ = -1;
  /// Highest WAL sequence consumed into the shard windows (coordinator
  /// thread); fleet checkpoints record it, pruning runs against it.
  uint64_t consumed_wal_seq_ = 0;
  bool have_prev_ = false;
  /// Warm anchors: entity -> the entity whose local id was its label on
  /// the previous tick (the global re-expression of prev labels).
  std::unordered_map<graph::VertexId, graph::VertexId> warm_anchor_;
  std::set<std::vector<graph::VertexId>> prev_confirmed_;

  // Tick scratch (coordinator thread + pool workers during a tick).
  size_t universe_ = 0;  ///< max entity id + 1 across shards
  std::vector<ShardScratch> shards_;
  std::vector<OwnerWork> owners_;
  EntityIntern stitch_intern_;
  std::vector<graph::VertexId> stitch_entities_;
  std::vector<graph::VertexId> stitch_uf_;
  std::vector<graph::VertexId> comp_min_entity_;
  /// owner_of_[entity] — valid for entities stamped in stitch_intern_; in
  /// incremental mode, persistent across ticks for all in-window entities
  /// (refreshed for dirty components each tick).
  std::vector<uint8_t> owner_of_;

  // Incremental serving (config_.tick.incremental; DESIGN.md §4.10): one
  // fleet-wide persistent union-find fed by per-shard window deltas — it
  // replaces the per-shard union-finds and the boundary stitch entirely on
  // exact ticks — plus the carried-over label anchors and cluster-record
  // cache that make clean components free.
  std::vector<graph::WindowRangeCursor> range_cursors_;  ///< one per shard
  IncrementalTracker inc_tracker_;
  /// anchor_of_[entity] = the entity whose owner-snapshot local id was this
  /// entity's published label last tick.
  std::vector<graph::VertexId> anchor_of_;
  /// IsDirty snapshot for the current tick, exported before the parallel
  /// owner fan-out so workers never race on the union-find.
  std::vector<uint8_t> entity_dirty_;
  bool inc_reuse_ok_ = false;
  struct ClusterRecord {
    pipeline::SuspiciousCluster cluster;
    graph::VertexId label_anchor;  ///< owner-snapshot anchor entity
  };
  std::vector<ClusterRecord> records_;
  bool records_valid_ = false;
  /// Indices into records_ reusable this tick, bucketed by owner shard.
  std::vector<std::vector<size_t>> owner_records_;
  std::vector<graph::VertexId> comp_min_scratch_;

  // Shared state (same discipline as StreamServer).
  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::condition_variable not_full_cv_;
  std::condition_variable drained_cv_;
  std::deque<RoutedBatch> queue_;
  bool started_ = false;
  bool stopping_ = false;
  bool dead_ = false;
  bool busy_ = false;
  double ingested_max_time_ = 0;
  Status last_error_ = Status::OK();
  // On-demand checkpoint handshake (same protocol as StreamServer).
  bool checkpoint_requested_ = false;
  Status checkpoint_status_ = Status::OK();
  std::condition_variable checkpoint_done_cv_;
  // Live-resize handshake (same protocol as the checkpoint one): Resize()
  // parks the target count here, the coordinator migrates at its next
  // quiesce point (queue drained) and reports back.
  int resize_requested_ = 0;
  Status resize_status_ = Status::OK();
  std::condition_variable resize_done_cv_;
  /// Tick of the last automatic resize decision (cooldown anchor).
  int64_t last_reshard_tick_ = 0;

  // Telemetry: aggregate glp_serve_* instruments (ServerStats-compatible)
  // plus per-shard families labeled {shard="k"}.
  std::unique_ptr<obs::MetricRegistry> owned_registry_;
  obs::MetricRegistry* registry_ = nullptr;
  struct Instruments {
    obs::Histogram* tick_seconds;
    obs::Counter* warm_ticks;
    obs::Counter* cold_ticks;
    obs::Counter* warm_iterations;
    obs::Counter* cold_iterations;
    obs::Counter* batches_ingested;
    obs::Counter* edges_ingested;
    obs::Counter* ingest_blocked;
    obs::Gauge* queue_depth;
    obs::Gauge* queue_peak;
    obs::Gauge* ingest_lag_days;
    obs::Counter* batches_rejected_invalid;
    obs::Counter* batches_rejected_failpoint;
    obs::Counter* batches_dropped;
    obs::Counter* ticks_shed;
    obs::Counter* degraded_ticks;
    obs::Counter* deadline_overruns;
    obs::Counter* tick_retries;
    obs::Counter* ticks_failed;
    obs::Counter* engine_fallbacks;
    obs::Counter* warm_fallbacks;
    obs::Counter* cold_refresh_deferred;
    obs::Counter* checkpoints_ok;
    obs::Counter* checkpoints_failed;
    obs::Gauge* dirty_components;
    obs::Counter* reused_clusters;
    obs::Counter* incremental_rebuilds;
    // Durability (glp_serve_wal_*) — same family as StreamServer.
    obs::Counter* wal_appends_ok;
    obs::Counter* wal_appends_failed;
    obs::Counter* wal_duplicates;
    obs::Counter* wal_fenced;
    obs::Counter* wal_replayed_batches;
    obs::Counter* wal_pruned_segments;
    obs::Counter* wal_fsyncs;
    obs::Counter* wal_bytes;
    obs::Gauge* wal_last_seq;
    obs::Gauge* wal_epoch;
    obs::Gauge* wal_segments;
    // Elastic resharding (glp_serve_reshard_*).
    obs::Counter* reshards_ok;
    obs::Counter* reshards_aborted;  ///< pre-commit failure or failpoint
    obs::Gauge* num_shards_gauge;
    obs::Histogram* reshard_pause_seconds;  ///< migration quiesce-to-resume
  };
  Instruments ins_{};
  struct ShardInstruments {
    obs::Histogram* tick_seconds;   ///< per-owner detection wall time
    obs::Counter* edges_routed;     ///< owned edges appended
    obs::Counter* edges_mirrored;   ///< mirrored copies appended
    obs::Gauge* window_edges;       ///< shard window size (incl. mirrors)
    obs::Gauge* components_owned;   ///< components this shard detected
    /// In-window routed edges last tick (incl. mirrors) — the heat signal
    /// ReshardPolicy's automatic rebalance decision reads.
    obs::Gauge* inwindow_edges;
  };
  std::vector<ShardInstruments> shard_ins_;

  // Tracing + freshness SLO (DESIGN.md §4.12) — same layout as
  // StreamServer. span_sink_ is mutex-guarded, so pool workers (per-owner
  // detection) append spans concurrently; tick_trace_/tick_root_span_ are
  // written by the coordinator before the fan-out and read-only inside it.
  obs::TraceSampler sampler_;
  obs::SpanSink span_sink_;
  std::unique_ptr<obs::FlightRecorder> recorder_;
  uint64_t tick_root_span_ = 0;
  obs::SpanContext tick_trace_;
  std::vector<FreshnessMeta> pending_freshness_;
  std::map<std::string, obs::Histogram*> freshness_hist_;
  static constexpr size_t kMaxPendingFreshness = 4096;

  // Durability (DurabilityPolicy; DESIGN.md §4.13) — same discipline as
  // StreamServer: one fleet-wide WAL of pre-routing wire batches.
  std::unique_ptr<wal::Wal> wal_;
  uint64_t wal_published_fsyncs_ = 0;
  uint64_t wal_published_bytes_ = 0;
  uint64_t wal_published_pruned_ = 0;

  std::atomic<bool> stop_token_{false};
  std::thread thread_;
};

}  // namespace glp::serve
