// The end-to-end fraud-detection pipeline of paper Figure 1:
//
//   transaction stream -> sliding-window graph -> LP clustering (seeded by
//   the blacklist) -> suspicious-cluster extraction -> downstream cluster
//   scoring (stand-in for the production GNN stage) -> detected entities.
//
// The LP stage is pluggable (any EngineKind/VariantKind), which is the
// pipeline-level payoff of GLP's programmability goal.

#pragma once

#include <cstdint>
#include <vector>

#include "glp/factory.h"
#include "glp/run.h"
#include "pipeline/metrics.h"
#include "pipeline/transactions.h"
#include "prof/prof.h"

namespace glp::pipeline {

/// Pipeline stage configuration.
///
/// The LP-run parameters live in one embedded lp::RunConfig — the same
/// struct the engines consume and the streaming server reuses per tick — so
/// there is exactly one place to set iterations, seed, early-stop, or
/// warm-start labels. Execution-environment concerns (profiler, thread
/// pool, cancellation) ride in the lp::RunContext passed alongside.
struct PipelineConfig {
  /// Sliding window: [end_day - window_days, end_day).
  int window_days = 30;
  /// Window end; negative means "end of stream".
  double end_day = -1;

  /// LP stage: engine and variant selection.
  lp::EngineKind engine = lp::EngineKind::kGlp;
  lp::VariantKind variant = lp::VariantKind::kClassic;
  lp::VariantParams variant_params;
  lp::GlpOptions glp_options;
  /// LP run parameters (iterations, seed, stop_when_stable, initial
  /// labels), forwarded verbatim to the engine.
  lp::RunConfig lp;

  /// Cluster extraction: suspicious clusters contain at least one
  /// blacklisted seed and are no larger than this (fraud rings are small;
  /// giant organic communities are ignored).
  uint64_t max_cluster_size = 500;

  /// Downstream scorer: minimum internal edge density for a suspicious
  /// cluster to be confirmed (the GNN stand-in; see DESIGN.md).
  double min_cluster_density = 0.05;

  /// Build weighted window graphs (parallel purchases collapsed into edge
  /// weights): identical detections at a fraction of the graph memory.
  /// Requires an LP engine that supports weighted graphs (not G-Sort).
  bool collapse_window_graphs = false;
};

/// One extracted cluster (global entity ids).
struct SuspiciousCluster {
  graph::Label label;
  std::vector<graph::VertexId> members;  ///< global ids
  int num_seeds = 0;
  int64_t internal_edges = 0;
  double density = 0;    ///< internal_edges / (|members| choose 2)
  bool confirmed = false;  ///< passed the downstream scorer
};

/// Full pipeline output for one window.
struct PipelineResult {
  // Window graph shape (Table 4 columns).
  graph::VertexId window_vertices = 0;
  graph::EdgeId window_edges = 0;

  lp::RunResult lp;
  std::vector<SuspiciousCluster> clusters;

  /// LP-stage detection quality (all members of suspicious clusters).
  DetectionMetrics lp_metrics;
  /// After the downstream scorer (confirmed clusters only).
  DetectionMetrics confirmed_metrics;

  /// Stage timings. lp_seconds is the engine's simulated_seconds (device
  /// time for GPU engines); lp_wall_seconds is the measured host wall-clock
  /// of the LP stage call; the others are host wall-clock.
  double build_seconds = 0;
  double lp_seconds = 0;
  double lp_wall_seconds = 0;
  double extract_seconds = 0;

  /// LP share of total pipeline time (the paper's "75%" observation),
  /// using the engine-reported (simulated) LP time.
  double LpFraction() const {
    const double total = build_seconds + lp_seconds + extract_seconds;
    return total == 0 ? 0 : lp_seconds / total;
  }

  /// LP share measured from host wall-clock rather than inferred from the
  /// engine's simulated time — what a deployment would actually observe.
  double MeasuredLpFraction() const {
    const double total = build_seconds + lp_wall_seconds + extract_seconds;
    return total == 0 ? 0 : lp_wall_seconds / total;
  }
};

/// \brief Incremental-detection input for DetectOnSnapshot (DESIGN.md
/// §4.10): which snapshot vertices are dirty, what the clean ones are
/// labeled, and which cluster records carry over verbatim.
///
/// Dirty vertices are the members of components whose edge set changed
/// since the caller's previous tick; the dirty set is component-closed (a
/// component is entirely dirty or entirely clean). LP runs only on the
/// subgraph induced by the dirty vertices — exact because label
/// propagation never crosses a component boundary — and clean vertices
/// take `clean_labels` (the caller's previous-tick labels, re-expressed in
/// this snapshot's local ids). `reused` holds the previous tick's cluster
/// records for clean components, labels already remapped; they are
/// appended to the freshly extracted clusters so the combined output is
/// byte-identical to a from-scratch extraction.
struct DetectDelta {
  /// Per-local-vertex dirty flag; size must equal the snapshot's vertex
  /// count, and the set must be closed under connectivity.
  std::vector<uint8_t> dirty;
  /// Label for every vertex (local ids); read only where !dirty.
  std::vector<graph::Label> clean_labels;
  /// Clean-component cluster records reused verbatim (members are global
  /// ids; label is the record's anchor re-expressed as a current local id).
  std::vector<SuspiciousCluster> reused;
  /// Run extraction over *all* components (ignoring `reused`) while still
  /// restricting LP to the dirty ones — the checkpoint-restore case, where
  /// previous labels survive but cluster records do not.
  bool extract_all = false;
};

/// \brief Runs LP clustering + cluster extraction + scoring on an
/// already-built window snapshot — stages 2 and 3 of Figure 1.
///
/// This is the tick kernel shared by the one-shot pipeline (which builds its
/// snapshot with SlidingWindow::Snapshot) and the streaming server (which
/// advances a SlidingWindowCursor incrementally): both paths feed the same
/// detection code, which is what makes the server's per-tick output
/// provably identical to an equivalent one-shot run.
///
/// `seeds` is the blacklist (global ids); `ground_truth` (nullable) scores
/// detections against the stream's injected fraud over
/// [window_start, window_end). build_seconds is left 0 — the caller owns
/// snapshot construction and its timing.
///
/// `delta` (nullable) switches on incremental detection: LP and extraction
/// run only over delta->dirty vertices, clean components take
/// delta->clean_labels and delta->reused. The published labels and
/// clusters are byte-identical to a delta-free run given the exactness
/// preconditions (empty config.lp.initial_labels, synchronous updates, a
/// variant without per-vertex-id randomness, and an even
/// config.lp.max_iterations when stop_when_stable is set — see DESIGN.md
/// §4.10); violating them is an InvalidArgument. lp.iterations and the
/// timing fields reflect the dirty subgraph only (cost accounting, exempt
/// from the byte-identity bar).
Result<PipelineResult> DetectOnSnapshot(const graph::WindowSnapshot& snap,
                                        const PipelineConfig& config,
                                        const lp::RunContext& ctx,
                                        const std::vector<graph::VertexId>& seeds,
                                        const TransactionStream* ground_truth,
                                        double window_start,
                                        double window_end,
                                        const DetectDelta* delta);

/// Delta-free overload (the historical signature).
Result<PipelineResult> DetectOnSnapshot(const graph::WindowSnapshot& snap,
                                        const PipelineConfig& config,
                                        const lp::RunContext& ctx,
                                        const std::vector<graph::VertexId>& seeds,
                                        const TransactionStream* ground_truth,
                                        double window_start,
                                        double window_end);

/// Runs the Figure 1 pipeline over a transaction stream.
class FraudDetectionPipeline {
 public:
  explicit FraudDetectionPipeline(const TransactionStream* stream);

  /// Processes one sliding window. Errors propagate from the LP engine.
  Result<PipelineResult> Run(const PipelineConfig& config) const;
  /// Same, with an explicit execution context (profiler / pool / stop
  /// token) threaded through to the LP engine.
  Result<PipelineResult> Run(const PipelineConfig& config,
                             const lp::RunContext& ctx) const;

 private:
  const TransactionStream* stream_;
  graph::SlidingWindow window_;
};

}  // namespace glp::pipeline
