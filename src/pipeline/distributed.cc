#include "pipeline/distributed.h"

#include "cpu/mfl.h"
#include "glp/variants/classic.h"
#include "pipeline/partition.h"
#include "util/timer.h"

namespace glp::pipeline {

SuperstepCost PriceSuperstep(const graph::Graph& g,
                             const ClusterConfig& cluster) {
  SuperstepCost cost;
  const int M = cluster.num_machines;
  const double edges = static_cast<double>(g.num_edges());

  // Compute: balanced hash partition, memory-bandwidth-bound per machine.
  const double edges_per_machine = edges / M;
  cost.compute_s = edges_per_machine * cluster.bytes_per_edge /
                   (cluster.machine_mem_bandwidth_gbps * 1e9);

  // Shuffle: count edges whose endpoints map to different machines under
  // the fleet partition map — the same assignment the sharded serving
  // layer routes by, so the cost model prices the cut the fleet would
  // actually shuffle. Each cut edge induces one label message per
  // superstep; receive volume is spread across machines.
  const PartitionMap map(M);
  int64_t cut_edges = 0;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    const int pv = map.PartOf(v);
    for (graph::VertexId u : g.neighbors(v)) {
      if (map.PartOf(u) != pv) ++cut_edges;
    }
  }
  const double messages_per_machine = static_cast<double>(cut_edges) / M;
  const double volume_per_machine =
      messages_per_machine * cluster.bytes_per_message;
  cost.shuffle_s = volume_per_machine / (cluster.network_bandwidth_gbps *
                                         cluster.network_efficiency * 1e9);
  // Message handling (serialize/route/apply) burns CPU alongside the raw
  // label counting.
  cost.compute_s += messages_per_machine * cluster.seconds_per_message;

  cost.barrier_s = cluster.barrier_latency_s;
  cost.total_s =
      (cost.compute_s + cost.shuffle_s) * cluster.straggler_factor +
      cost.barrier_s;
  return cost;
}

Result<lp::RunResult> DistributedLpEngine::Run(const graph::Graph& g,
                                               const lp::RunConfig& config,
                                               const lp::RunContext& ctx) {
  if (!config.initial_labels.empty() &&
      config.initial_labels.size() != g.num_vertices()) {
    return Status::InvalidArgument("initial_labels size mismatch");
  }
  glp::Timer timer;
  glp::ThreadPool* const pool = ctx.pool != nullptr ? ctx.pool : pool_;
  lp::ClassicVariant variant;
  variant.Init(g, config);

  // The superstep price is graph-dependent but label-independent; compute it
  // once.
  const SuperstepCost step = PriceSuperstep(g, cluster_);

  lp::RunResult result;
  lp::StabilityTracker stability;
  const bool track_cycles =
      config.stop_when_stable && !variant.needs_pick_kernel();
  if (track_cycles) stability.Reset(variant.labels());
  for (int iter = 0; iter < config.max_iterations; ++iter) {
    if (ctx.StopRequested()) {
      return Status::Cancelled("distributed run cancelled");
    }
    variant.BeginIteration(iter);
    auto& next = variant.next_labels();
    const lp::ClassicVariant& cvariant = variant;
    pool->ParallelFor(
        0, g.num_vertices(),
        [&](int64_t lo, int64_t hi) {
          cpu::LabelCounter counter;
          for (int64_t v = lo; v < hi; ++v) {
            next[v] = cpu::ComputeMfl(g, cvariant,
                                      static_cast<graph::VertexId>(v),
                                      &counter);
          }
        },
        4096);
    const int changed = variant.EndIteration(iter);
    result.iteration_seconds.push_back(step.total_s);
    ++result.iterations;
    if (config.stop_when_stable &&
        (changed == 0 ||
         (track_cycles && stability.Cycled(variant.labels())))) {
      break;
    }
  }

  result.labels = variant.FinalLabels();
  result.wall_seconds = timer.Seconds();
  result.simulated_seconds = step.total_s * result.iterations;
  return result;
}

}  // namespace glp::pipeline
