// Partition assignment shared by the distributed cost model
// (pipeline::PriceSuperstep) and the live sharded serving layer
// (serve::ShardedStreamServer). One definition, so the simulated cluster
// and the real shard fleet agree on which machine/shard owns an entity.
//
// Two layers:
//   - PartitionOf(v, n): the stateless hash rule. HashMix64 spreads the
//     (often sequential) entity-id space so partitions balance even under
//     range-clustered id assignment.
//   - PartitionMap: a *versioned* assignment — hash rule over `num_parts`
//     plus an optional sorted per-entity override table. The serving layer
//     routes every edge through one PartitionMap snapshot, persists the map
//     in the shard manifest (v3), and bumps `version` on every reshard so
//     producers racing a live resize can detect a stale routing decision
//     and re-route (DESIGN.md §4.14).

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "util/hash.h"

namespace glp::pipeline {

/// The shard/machine that owns entity `v` in an `num_parts`-way hash
/// partition. A non-positive or single part count owns everything at part
/// 0 — mod 0 is UB, and callers sizing a fleet down to one shard expect
/// the degenerate map, not a crash.
inline int PartitionOf(graph::VertexId v, int num_parts) {
  if (num_parts <= 1) return 0;
  return static_cast<int>(glp::HashMix64(v) %
                          static_cast<uint64_t>(num_parts));
}

/// \brief Versioned entity→partition assignment.
///
/// The default map of `n` parts reproduces PartitionOf(v, n) exactly, so
/// manifests written before the map existed (v1/v2) deserialize into an
/// equivalent PartitionMap and old checkpoints restore byte-identically.
/// Overrides pin individual entities to an explicit part (sorted lookup
/// table); Repartitioned() derives the successor map and bumps the
/// version, which is what routing snapshots compare against.
class PartitionMap {
 public:
  PartitionMap() = default;
  explicit PartitionMap(int num_parts, uint64_t version = 1)
      : num_parts_(num_parts < 1 ? 1 : num_parts), version_(version) {}

  int num_parts() const { return num_parts_; }
  uint64_t version() const { return version_; }

  /// The part owning entity `v`: the override table when pinned, the hash
  /// rule otherwise.
  int PartOf(graph::VertexId v) const {
    if (!override_keys_.empty()) {
      const auto it = std::lower_bound(override_keys_.begin(),
                                       override_keys_.end(), v);
      if (it != override_keys_.end() && *it == v) {
        return override_parts_[static_cast<size_t>(
            it - override_keys_.begin())];
      }
    }
    return PartitionOf(v, num_parts_);
  }

  /// Pins entity `v` to `part` (replacing any existing pin). Out-of-range
  /// parts are clamped into [0, num_parts).
  void SetOverride(graph::VertexId v, int part) {
    if (part < 0) part = 0;
    if (part >= num_parts_) part = num_parts_ - 1;
    const auto it =
        std::lower_bound(override_keys_.begin(), override_keys_.end(), v);
    const size_t idx = static_cast<size_t>(it - override_keys_.begin());
    if (it != override_keys_.end() && *it == v) {
      override_parts_[idx] = part;
      return;
    }
    override_keys_.insert(it, v);
    override_parts_.insert(override_parts_.begin() +
                               static_cast<ptrdiff_t>(idx),
                           part);
  }

  void ClearOverrides() {
    override_keys_.clear();
    override_parts_.clear();
  }

  /// Sorted override table, exposed for manifest serialization.
  const std::vector<graph::VertexId>& override_keys() const {
    return override_keys_;
  }
  const std::vector<int32_t>& override_parts() const {
    return override_parts_;
  }

  /// Rebuilds the override table from parallel arrays (manifest
  /// deserialization). Keys must be sorted and unique; parts are clamped.
  void SetOverrides(std::vector<graph::VertexId> keys,
                    std::vector<int32_t> parts) {
    override_keys_ = std::move(keys);
    override_parts_ = std::move(parts);
    for (int32_t& p : override_parts_) {
      if (p < 0) p = 0;
      if (p >= num_parts_) p = num_parts_ - 1;
    }
  }

  /// The successor map after resizing to `new_parts`: hash rule over the
  /// new count, overrides dropped (they were pinned against the old
  /// count), version bumped so routing snapshots taken under this map
  /// read as stale.
  PartitionMap Repartitioned(int new_parts) const {
    return PartitionMap(new_parts, version_ + 1);
  }

  bool operator==(const PartitionMap& o) const {
    return num_parts_ == o.num_parts_ && version_ == o.version_ &&
           override_keys_ == o.override_keys_ &&
           override_parts_ == o.override_parts_;
  }
  bool operator!=(const PartitionMap& o) const { return !(*this == o); }

 private:
  int num_parts_ = 1;
  uint64_t version_ = 1;
  // Parallel arrays, sorted by key: entity → pinned part.
  std::vector<graph::VertexId> override_keys_;
  std::vector<int32_t> override_parts_;
};

}  // namespace glp::pipeline
