// Hash partition assignment shared by the distributed cost model
// (pipeline::PriceSuperstep) and the live sharded serving layer
// (serve::ShardedStreamServer). One definition, so the simulated cluster
// and the real shard fleet agree on which machine/shard owns an entity.

#pragma once

#include "graph/types.h"
#include "util/hash.h"

namespace glp::pipeline {

/// The shard/machine that owns entity `v` in an `num_parts`-way hash
/// partition. HashMix64 spreads the (often sequential) entity-id space so
/// partitions balance even under range-clustered id assignment.
inline int PartitionOf(graph::VertexId v, int num_parts) {
  return static_cast<int>(glp::HashMix64(v) %
                          static_cast<uint64_t>(num_parts));
}

}  // namespace glp::pipeline
