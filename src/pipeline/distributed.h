// Simulator of TaoBao's in-house *distributed* LP solution — the comparison
// system of Figure 7. See DESIGN.md §1 for the substitution rationale.
//
// Model: bulk-synchronous LP over hash-partitioned vertices on a cluster of
// identical machines. Each superstep (a) computes MFLs for the local
// partition (memory-bandwidth-bound, like any CPU LP), (b) shuffles the
// labels of boundary vertices to every partition that references them, and
// (c) barriers. The label computation itself runs for real (shared memory —
// results are exactly those of the other engines); the *time* is priced by
// the cluster cost model, whose dominant term is the per-superstep network
// shuffle, which is what makes the in-house system ~8x slower than a single
// GPU despite 32 machines.

#pragma once

#include <cstdint>
#include <string>

#include "glp/run.h"
#include "graph/csr.h"
#include "util/thread_pool.h"

namespace glp::pipeline {

/// Cluster hardware description (§5.1: 32 machines, 4x Xeon Platinum 8168
/// each, datacenter Ethernet).
struct ClusterConfig {
  int num_machines = 32;
  /// Effective per-machine memory bandwidth usable by LP (GB/s). 4-socket
  /// Skylake-SP sustains ~200 GB/s stream; LP's random access realizes a
  /// fraction of it.
  double machine_mem_bandwidth_gbps = 60.0;
  /// Bytes of memory traffic per processed edge (label gather + count).
  double bytes_per_edge = 16.0;
  /// Per-machine network bandwidth (GB/s) — 10 GbE.
  double network_bandwidth_gbps = 1.25;
  /// Achievable fraction of line rate under the all-to-all shuffle's incast
  /// pattern.
  double network_efficiency = 0.6;
  /// Bytes per shuffled label message (vertex id + label).
  double bytes_per_message = 8.0;
  /// CPU handling cost per message (serialize, route, apply) — the framework
  /// tax that dominates production BSP systems at scale.
  double seconds_per_message = 20e-9;
  /// Superstep barrier + coordination latency (s).
  double barrier_latency_s = 5e-3;
  /// Straggler multiplier on the BSP critical path: hash partitioning of a
  /// power-law graph leaves the slowest machine this much above the mean.
  double straggler_factor = 1.6;

  /// Hardware cost per machine in dollars (§5.4: 4x $5890 CPUs).
  double dollars_per_machine = 4 * 5890.0;
  double TotalDollars() const { return num_machines * dollars_per_machine; }
};

/// Per-superstep time breakdown of the model.
struct SuperstepCost {
  double compute_s = 0;
  double shuffle_s = 0;
  double barrier_s = 0;
  double total_s = 0;
};

/// Prices one LP superstep on `g` under `cluster` (hash partitioning).
SuperstepCost PriceSuperstep(const graph::Graph& g,
                             const ClusterConfig& cluster);

/// The distributed baseline as a runnable Engine (classic LP only — the
/// in-house system is a fixed production job, not a framework).
class DistributedLpEngine : public lp::Engine {
 public:
  explicit DistributedLpEngine(const ClusterConfig& cluster = {},
                               glp::ThreadPool* pool = nullptr)
      : cluster_(cluster),
        pool_(pool != nullptr ? pool : glp::ThreadPool::Default()) {}

  std::string name() const override { return "InHouse-Distributed"; }

  using lp::Engine::Run;
  Result<lp::RunResult> Run(const graph::Graph& g, const lp::RunConfig& config,
                            const lp::RunContext& ctx) override;

 private:
  ClusterConfig cluster_;
  glp::ThreadPool* pool_;
};

}  // namespace glp::pipeline
