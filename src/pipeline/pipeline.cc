#include "pipeline/pipeline.h"

#include <algorithm>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "obs/kernel_export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/failpoint.h"
#include "util/timer.h"

namespace glp::pipeline {

using graph::Label;
using graph::VertexId;

namespace {

/// Per-engine failpoint name, so chaos schedules can fault one device class
/// (e.g. only the GPU engines) and leave the CPU fallback path healthy.
const char* EngineFailpointName(lp::EngineKind kind) {
  switch (kind) {
    case lp::EngineKind::kSeq: return "lp.engine.seq";
    case lp::EngineKind::kTg: return "lp.engine.tg";
    case lp::EngineKind::kLigra: return "lp.engine.ligra";
    case lp::EngineKind::kOmp: return "lp.engine.omp";
    case lp::EngineKind::kGSort: return "lp.engine.gsort";
    case lp::EngineKind::kGHash: return "lp.engine.ghash";
    case lp::EngineKind::kGlp: return "lp.engine.glp";
  }
  return "lp.engine.unknown";
}

}  // namespace

FraudDetectionPipeline::FraudDetectionPipeline(const TransactionStream* stream)
    : stream_(stream), window_(stream->edges) {}

Result<PipelineResult> DetectOnSnapshot(
    const graph::WindowSnapshot& snap, const PipelineConfig& config,
    const lp::RunContext& ctx, const std::vector<VertexId>& seeds,
    const TransactionStream* ground_truth, double window_start,
    double window_end, const DetectDelta* delta) {
  PipelineResult out;
  prof::PhaseProfiler* const profiler = ctx.profiler;
  out.window_vertices = snap.graph.num_vertices();
  out.window_edges = snap.graph.num_edges();
  if (snap.graph.num_vertices() == 0) {
    return Status::InvalidArgument("window contains no transactions");
  }
  const VertexId num_local = snap.graph.num_vertices();
  const bool incremental = delta != nullptr;
  if (incremental) {
    if (delta->dirty.size() != static_cast<size_t>(num_local) ||
        delta->clean_labels.size() != static_cast<size_t>(num_local)) {
      return Status::InvalidArgument(
          "DetectDelta arrays do not match the snapshot");
    }
    // Exactness preconditions (DESIGN.md §4.10). Per-component LP equals
    // whole-graph LP only when the dynamics are component-local and
    // equivariant under the monotone dirty-rank relabeling: no caller-
    // supplied initial labels, synchronous updates, no per-vertex-id
    // randomness (SLP's speaker draws hash the raw vertex id), and — under
    // stop_when_stable — an even iteration budget so a budget-exhausted
    // stop lands on the same period-2 phase as StabilityTracker's
    // even-commit stop.
    if (!config.lp.initial_labels.empty() || !config.lp.synchronous ||
        config.variant == lp::VariantKind::kSlp ||
        (config.lp.stop_when_stable && config.lp.max_iterations % 2 != 0)) {
      return Status::InvalidArgument(
          "incremental detection requires synchronous LP with default "
          "initialization, a non-SLP variant, and an even iteration budget "
          "under stop_when_stable");
    }
  }

  // The caller's tick trace (serve layer): stage spans parent to the
  // tick's detect span so the wire-to-publish tree crosses this boundary.
  const obs::SpanContext trace_parent{ctx.trace_id, ctx.trace_parent_span,
                                      ctx.trace_id != 0};

  // --- Stage 2: LP clustering ---
  GLP_FAILPOINT("pipeline.lp_dispatch");
  GLP_FAILPOINT(EngineFailpointName(config.engine));
  auto engine = lp::MakeEngine(config.engine, config.variant,
                               config.variant_params, config.glp_options,
                               ctx.pool);
  obs::ScopedSpan lp_span(ctx.trace_sink, trace_parent, "pipeline.lp");
  if (lp_span.active()) {
    lp_span.AddLabel("engine", engine->name());
    if (incremental) lp_span.AddLabel("incremental", "1");
  }
  glp::Timer lp_timer;
  const double lp_host_start = profiler != nullptr ? profiler->HostNow() : 0;
  lp::RunResult lp_run;
  if (!incremental) {
    auto lp_result = engine->Run(snap.graph, config.lp, ctx);
    if (!lp_result.ok()) return lp_result.status();
    lp_run = std::move(lp_result).value();
  } else {
    // LP over the dirty subgraph only. The dirty set is component-closed,
    // so every neighbor of a dirty vertex is dirty: copying the dirty
    // vertices' CSR rows with ids remapped through the dirty-rank
    // bijection yields the exact induced subgraph — same neighbor order,
    // no re-symmetrization — and the bijection is monotone, so the
    // subgraph run's labels are the whole-graph run's labels under the
    // same remap (un-done by the scatter below).
    std::vector<VertexId> sub_l2g;
    std::vector<VertexId> sub_of(num_local, 0);
    for (VertexId v = 0; v < num_local; ++v) {
      if (delta->dirty[v]) {
        sub_of[v] = static_cast<VertexId>(sub_l2g.size());
        sub_l2g.push_back(v);
      }
    }
    if (sub_l2g.empty()) {
      lp_run.labels = delta->clean_labels;
    } else {
      const VertexId num_sub = static_cast<VertexId>(sub_l2g.size());
      std::vector<graph::EdgeId> offsets(static_cast<size_t>(num_sub) + 1, 0);
      graph::EdgeId total = 0;
      for (VertexId s = 0; s < num_sub; ++s) {
        offsets[s] = total;
        total += snap.graph.degree(sub_l2g[s]);
      }
      offsets[num_sub] = total;
      const bool weighted = snap.graph.has_weights();
      std::vector<VertexId> neighbors;
      neighbors.reserve(total);
      std::vector<float> weights;
      if (weighted) weights.reserve(total);
      for (VertexId s = 0; s < num_sub; ++s) {
        const VertexId v = sub_l2g[s];
        const graph::EdgeId begin = snap.graph.offset(v);
        const auto nbrs = snap.graph.neighbors(v);
        for (size_t i = 0; i < nbrs.size(); ++i) {
          neighbors.push_back(sub_of[nbrs[i]]);
          if (weighted) {
            weights.push_back(snap.graph.edge_weight(
                begin + static_cast<graph::EdgeId>(i)));
          }
        }
      }
      graph::Graph sub =
          weighted ? graph::Graph(num_sub, std::move(offsets),
                                  std::move(neighbors), std::move(weights))
                   : graph::Graph(num_sub, std::move(offsets),
                                  std::move(neighbors));
      auto lp_result = engine->Run(sub, config.lp, ctx);
      if (!lp_result.ok()) return lp_result.status();
      lp_run = std::move(lp_result).value();
      std::vector<graph::Label> full = delta->clean_labels;
      for (VertexId s = 0; s < num_sub; ++s) {
        full[sub_l2g[s]] = sub_l2g[lp_run.labels[s]];
      }
      lp_run.labels = std::move(full);
    }
  }
  out.lp_wall_seconds = lp_timer.Seconds();
  if (lp_span.active()) {
    lp_span.AddLabel("iterations", std::to_string(lp_run.iterations));
  }
  lp_span.End();
  if (profiler != nullptr) {
    profiler->RecordHostEvent("lp-clustering", lp_host_start,
                              out.lp_wall_seconds);
  }
  out.lp = std::move(lp_run);
  out.lp_seconds = out.lp.simulated_seconds;
  if (ctx.metrics != nullptr) {
    // Whole-run hardware counters under kernel="all"; the per-phase split
    // (one series per kernel) when a profiler was attached.
    obs::ExportKernelStats(ctx.metrics, engine->name(), "all", out.lp.stats);
    obs::ExportPhaseBreakdown(ctx.metrics, engine->name(),
                              out.lp.phase_breakdown);
    ctx.metrics
        ->GetHistogram("glp_pipeline_stage_seconds",
                       "Wall time of one pipeline stage",
                       {{"stage", "lp"}})
        ->Observe(out.lp_wall_seconds);
  }

  // --- Stage 3: suspicious-cluster extraction + downstream scoring ---
  GLP_FAILPOINT("pipeline.extract");
  obs::ScopedSpan extract_span(ctx.trace_sink, trace_parent,
                               "pipeline.extract");
  glp::Timer extract_timer;
  const double extract_host_start =
      profiler != nullptr ? profiler->HostNow() : 0;

  // Seeds present in this window (local ids).
  std::unordered_set<VertexId> seed_globals(seeds.begin(), seeds.end());
  std::vector<uint8_t> is_seed_local(snap.graph.num_vertices(), 0);
  for (VertexId local = 0; local < snap.graph.num_vertices(); ++local) {
    if (seed_globals.count(snap.local_to_global[local])) {
      is_seed_local[local] = 1;
    }
  }

  // Group vertices by final label. Incremental ticks group only dirty
  // vertices: a label group is always contained in one component, so clean
  // components' clusters are exactly the `reused` records appended below.
  std::unordered_map<Label, std::vector<VertexId>> groups;
  for (VertexId local = 0; local < snap.graph.num_vertices(); ++local) {
    if (incremental && !delta->extract_all && delta->dirty[local] == 0) {
      continue;
    }
    groups[out.lp.labels[local]].push_back(local);
  }

  for (auto& [label, base_members] : groups) {
    if (base_members.size() > config.max_cluster_size ||
        base_members.size() < 2) {
      continue;
    }
    int seeds_in_group = 0;
    for (VertexId local : base_members) {
      seeds_in_group += is_seed_local[local];
    }
    if (seeds_in_group == 0) continue;

    // Expand with companion label groups: synchronous LP two-colors
    // bipartite clusters (buyers and items oscillate between a label pair),
    // so the ring's items sit in a sibling group most of this group's edges
    // point into. Merge any group receiving >= 30% of the outgoing edges,
    // subject to the same size cap.
    std::vector<VertexId> members = base_members;
    std::unordered_map<Label, double> out_edges;
    double total_out = 0;
    for (VertexId local : base_members) {
      const graph::EdgeId begin = snap.graph.offset(local);
      const auto neighbors = snap.graph.neighbors(local);
      for (size_t i = 0; i < neighbors.size(); ++i) {
        const double w =
            snap.graph.edge_weight(begin + static_cast<graph::EdgeId>(i));
        out_edges[out.lp.labels[neighbors[i]]] += w;
        total_out += w;
      }
    }
    for (const auto& [other_label, count] : out_edges) {
      if (other_label == label || total_out == 0) continue;
      if (count < 0.3 * total_out) continue;
      auto it = groups.find(other_label);
      if (it == groups.end() || it->second.size() > config.max_cluster_size) {
        continue;
      }
      members.insert(members.end(), it->second.begin(), it->second.end());
    }

    SuspiciousCluster cluster;
    cluster.label = label;
    // Count seeds over the *merged* membership: companion groups carry
    // seeds too (the items side of a two-colored bipartite ring), so the
    // base group's count alone undercounts.
    cluster.num_seeds = 0;
    for (VertexId local : members) {
      cluster.num_seeds += is_seed_local[local];
    }
    // Internal interaction count (each undirected edge appears twice in the
    // CSR; weighted graphs carry the purchase multiplicity as weights, so
    // multigraph and collapsed windows score identically).
    std::unordered_set<VertexId> member_set(members.begin(), members.end());
    double internal2 = 0;
    for (VertexId local : members) {
      const graph::EdgeId begin = snap.graph.offset(local);
      const auto neighbors = snap.graph.neighbors(local);
      for (size_t i = 0; i < neighbors.size(); ++i) {
        if (member_set.count(neighbors[i])) {
          internal2 += snap.graph.edge_weight(
              begin + static_cast<graph::EdgeId>(i));
        }
      }
    }
    cluster.internal_edges = static_cast<int64_t>(internal2 / 2);
    const double pairs =
        static_cast<double>(members.size()) * (members.size() - 1) / 2.0;
    // Window graphs are multigraphs (purchase multiplicity); density can
    // exceed 1.0 on heavily collusive clusters — cap for interpretability.
    cluster.density =
        pairs == 0 ? 0 : std::min(1.0, cluster.internal_edges / pairs);
    cluster.confirmed = cluster.density >= config.min_cluster_density;
    cluster.members.reserve(members.size());
    for (VertexId local : members) {
      cluster.members.push_back(snap.local_to_global[local]);
    }
    std::sort(cluster.members.begin(), cluster.members.end());
    out.clusters.push_back(std::move(cluster));
  }
  if (incremental && !delta->extract_all) {
    out.clusters.insert(out.clusters.end(), delta->reused.begin(),
                        delta->reused.end());
  }
  std::sort(out.clusters.begin(), out.clusters.end(),
            [](const SuspiciousCluster& a, const SuspiciousCluster& b) {
              return a.label < b.label;
            });
  // Mutual companion merges emit the same ring twice (A absorbs B and B
  // absorbs A, differing only in label): keep one record per member set —
  // the first after the label sort, i.e. the smallest label.
  {
    std::set<std::vector<VertexId>> seen;
    size_t kept = 0;
    for (size_t i = 0; i < out.clusters.size(); ++i) {
      if (!seen.insert(out.clusters[i].members).second) continue;
      if (kept != i) out.clusters[kept] = std::move(out.clusters[i]);
      ++kept;
    }
    out.clusters.resize(kept);
  }

  // --- Metrics against the injected ground truth, over window-active
  // entities. ---
  if (ground_truth != nullptr) {
    std::unordered_set<VertexId> detected_lp, detected_confirmed;
    for (const SuspiciousCluster& c : out.clusters) {
      for (VertexId g : c.members) {
        detected_lp.insert(g);
        if (c.confirmed) detected_confirmed.insert(g);
      }
    }
    // Ground truth for this window: ring members whose ring colluded inside
    // the window (a dormant ring leaves no signature to detect).
    auto score = [&](const std::unordered_set<VertexId>& detected) {
      DetectionMetrics m;
      for (VertexId local = 0; local < snap.graph.num_vertices(); ++local) {
        const VertexId g = snap.local_to_global[local];
        const bool fraud =
            ground_truth->IsFraudActiveIn(g, window_start, window_end);
        const bool hit = detected.count(g) > 0;
        if (fraud && hit) ++m.true_positives;
        if (!fraud && hit) ++m.false_positives;
        if (fraud && !hit) ++m.false_negatives;
      }
      return m;
    };
    out.lp_metrics = score(detected_lp);
    out.confirmed_metrics = score(detected_confirmed);
  }

  out.extract_seconds = extract_timer.Seconds();
  if (extract_span.active()) {
    extract_span.AddLabel("clusters", std::to_string(out.clusters.size()));
  }
  extract_span.End();
  if (profiler != nullptr) {
    profiler->RecordHostEvent("cluster-extract", extract_host_start,
                              out.extract_seconds);
  }
  if (ctx.metrics != nullptr) {
    ctx.metrics
        ->GetHistogram("glp_pipeline_stage_seconds",
                       "Wall time of one pipeline stage",
                       {{"stage", "extract"}})
        ->Observe(out.extract_seconds);
    ctx.metrics
        ->GetCounter("glp_pipeline_clusters_total",
                     "Suspicious clusters extracted", {{"kind", "all"}})
        ->Increment(out.clusters.size());
    uint64_t confirmed = 0;
    for (const SuspiciousCluster& c : out.clusters) confirmed += c.confirmed;
    ctx.metrics
        ->GetCounter("glp_pipeline_clusters_total",
                     "Suspicious clusters extracted", {{"kind", "confirmed"}})
        ->Increment(confirmed);
  }
  return out;
}

Result<PipelineResult> DetectOnSnapshot(
    const graph::WindowSnapshot& snap, const PipelineConfig& config,
    const lp::RunContext& ctx, const std::vector<VertexId>& seeds,
    const TransactionStream* ground_truth, double window_start,
    double window_end) {
  return DetectOnSnapshot(snap, config, ctx, seeds, ground_truth,
                          window_start, window_end, /*delta=*/nullptr);
}

Result<PipelineResult> FraudDetectionPipeline::Run(
    const PipelineConfig& config) const {
  return Run(config, lp::RunContext());
}

Result<PipelineResult> FraudDetectionPipeline::Run(
    const PipelineConfig& config, const lp::RunContext& ctx) const {
  prof::PhaseProfiler* const profiler = ctx.profiler;

  // --- Stage 1: sliding-window graph construction ---
  glp::Timer build_timer;
  const double build_host_start =
      profiler != nullptr ? profiler->HostNow() : 0;
  const double end = config.end_day < 0
                         ? stream_->config.days
                         : config.end_day;
  graph::SlidingWindow::Scratch scratch;
  const graph::WindowSnapshot snap =
      window_.Snapshot(end - config.window_days, end, &scratch,
                       config.collapse_window_graphs);
  const double build_seconds = build_timer.Seconds();
  if (profiler != nullptr) {
    profiler->RecordHostEvent("window-build", build_host_start,
                              build_seconds);
  }
  if (ctx.metrics != nullptr) {
    ctx.metrics
        ->GetHistogram("glp_pipeline_stage_seconds",
                       "Wall time of one pipeline stage",
                       {{"stage", "window_build"}})
        ->Observe(build_seconds);
  }

  auto result = DetectOnSnapshot(snap, config, ctx, stream_->seeds, stream_,
                                 end - config.window_days, end);
  if (!result.ok()) return result.status();
  PipelineResult out = std::move(result).value();
  out.build_seconds = build_seconds;
  return out;
}

}  // namespace glp::pipeline
