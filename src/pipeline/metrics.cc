#include "pipeline/metrics.h"

#include <algorithm>
#include <sstream>

namespace glp::pipeline {

std::string DetectionMetrics::ToString() const {
  std::ostringstream os;
  os << "precision=" << Precision() << " recall=" << Recall()
     << " f1=" << F1() << " (tp=" << true_positives
     << " fp=" << false_positives << " fn=" << false_negatives << ")";
  return os.str();
}

ClusterStats ClusterStats::Of(const std::vector<graph::Label>& labels) {
  std::unordered_map<graph::Label, uint64_t> sizes;
  for (graph::Label l : labels) ++sizes[l];
  ClusterStats s;
  s.num_clusters = sizes.size();
  uint64_t total = 0;
  for (const auto& [l, c] : sizes) {
    s.largest = std::max(s.largest, c);
    total += c;
  }
  s.mean_size = sizes.empty() ? 0.0
                              : static_cast<double>(total) /
                                    static_cast<double>(sizes.size());
  return s;
}

std::string ClusterStats::ToString() const {
  std::ostringstream os;
  os << "clusters=" << num_clusters << " largest=" << largest
     << " mean=" << mean_size;
  return os.str();
}

}  // namespace glp::pipeline
