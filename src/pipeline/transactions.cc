#include "pipeline/transactions.h"

#include <algorithm>
#include <cmath>

#include "util/hash.h"
#include "util/logging.h"
#include "util/rng.h"

namespace glp::pipeline {

TransactionStream GenerateTransactions(const TransactionConfig& config) {
  GLP_CHECK_GE(config.num_rings * config.ring_buyers,
               0);
  GLP_CHECK_LE(
      static_cast<uint64_t>(config.num_rings) * config.ring_buyers,
      static_cast<uint64_t>(config.num_buyers))
      << "rings need distinct buyers";
  GLP_CHECK_LE(static_cast<uint64_t>(config.num_rings) * config.ring_items,
               static_cast<uint64_t>(config.num_items))
      << "rings need distinct items";

  glp::Rng rng(config.seed);
  TransactionStream stream;
  stream.config = config;
  stream.ring_of.assign(config.num_buyers + config.num_items, -1);

  // Zipf CDF for organic item popularity.
  std::vector<double> cdf(config.num_items);
  double total = 0;
  for (uint32_t i = 0; i < config.num_items; ++i) {
    total += std::pow(static_cast<double>(i) + 1.0, -config.item_skew);
    cdf[i] = total;
  }
  for (uint32_t i = 0; i < config.num_items; ++i) cdf[i] /= total;
  auto sample_item = [&]() -> graph::VertexId {
    const double r = rng.NextDouble();
    const uint32_t item = static_cast<uint32_t>(
        std::lower_bound(cdf.begin(), cdf.end(), r) - cdf.begin());
    return config.num_buyers + item;
  };

  // Organic traffic with Zipf-skewed per-buyer activity: a few heavy buyers
  // and a long tail of occasional ones, normalized so the mean rate matches
  // the config. Buyer ranks are hash-scrambled so activity is independent of
  // id (ring buyers occupy low ids).
  double weight_total = 0;
  for (uint32_t b = 0; b < config.num_buyers; ++b) {
    weight_total += std::pow(static_cast<double>(b) + 1.0, -config.buyer_skew);
  }
  const double organic_total = config.num_buyers *
                               config.purchases_per_buyer_per_day *
                               config.days;
  stream.edges.reserve(static_cast<size_t>(organic_total * 1.2));
  for (uint32_t b = 0; b < config.num_buyers; ++b) {
    const uint32_t rank = static_cast<uint32_t>(
        glp::HashSeeded(b, config.seed) % config.num_buyers);
    const double weight =
        std::pow(static_cast<double>(rank) + 1.0, -config.buyer_skew) /
        weight_total;
    const double expected = organic_total * weight;
    const int purchases =
        static_cast<int>(expected) +
        (rng.NextDouble() < expected - std::floor(expected) ? 1 : 0);
    for (int p = 0; p < purchases; ++p) {
      stream.edges.push_back(
          {b, sample_item(), rng.NextDouble() * config.days});
    }
  }

  // Fraud rings: disjoint buyer and item blocks, dense collusive purchases
  // within a random active span.
  for (int r = 0; r < config.num_rings; ++r) {
    const uint32_t buyer_base = r * config.ring_buyers;
    // Ring items come from the *tail* of the popularity distribution: fraud
    // rings boost obscure listings, and placing them at the Zipf head would
    // merge the rings into the giant organic communities.
    const uint32_t item_base =
        config.num_buyers + config.num_items - (r + 1) * config.ring_items;
    for (int i = 0; i < config.ring_buyers; ++i) {
      stream.ring_of[buyer_base + i] = r;
    }
    for (int i = 0; i < config.ring_items; ++i) {
      stream.ring_of[item_base + i] = r;
    }

    const int span = config.min_ring_active_days +
                     static_cast<int>(rng.Bounded(std::max(
                         1, config.days - config.min_ring_active_days)));
    const int active_days = std::min(span, config.days);
    const int start_day =
        static_cast<int>(rng.Bounded(config.days - active_days + 1));
    stream.ring_span.push_back(
        {static_cast<double>(start_day),
         static_cast<double>(start_day + active_days)});

    for (int i = 0; i < config.ring_buyers; ++i) {
      const graph::VertexId buyer = buyer_base + i;
      const double expected = config.ring_purchases_per_day * active_days;
      const int purchases =
          static_cast<int>(expected) +
          (rng.NextDouble() < expected - std::floor(expected) ? 1 : 0);
      for (int p = 0; p < purchases; ++p) {
        const graph::VertexId item =
            item_base + static_cast<graph::VertexId>(
                            rng.Bounded(config.ring_items));
        const double t = start_day + rng.NextDouble() * active_days;
        stream.edges.push_back({buyer, item, t});
      }
    }

    // Reveal a fraction of the ring as blacklist seeds.
    const int num_seeds = std::max(
        1, static_cast<int>(config.seed_fraction * config.ring_buyers));
    for (int i = 0; i < num_seeds; ++i) {
      stream.seeds.push_back(buyer_base + i);
    }
  }

  return stream;
}

}  // namespace glp::pipeline
