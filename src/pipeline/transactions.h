// Synthetic TaoBao-style transaction stream with injected fraud rings —
// the stand-in for the proprietary workload of paper §5.4 (Table 4).
//
// Entities are buyers and items (bipartite). Organic traffic follows Zipf
// item popularity; fraud rings are small buyer groups that collusively and
// repeatedly purchase a small item set (the dense-cluster signature LP
// detects). Ground-truth ring membership is retained for precision/recall
// evaluation, and a fraction of ring members is revealed as the blacklist
// ("stored seeds" in Figure 1).

#pragma once

#include <cstdint>
#include <vector>

#include "graph/sliding_window.h"
#include "graph/types.h"

namespace glp::pipeline {

/// Generator parameters (defaults give a laptop-scale stream; the Table 4
/// bench scales num_buyers/num_items/days up).
struct TransactionConfig {
  uint32_t num_buyers = 20000;
  uint32_t num_items = 5000;
  /// Stream length in days.
  int days = 100;
  /// Organic purchases per buyer per day (expected, averaged over buyers).
  double purchases_per_buyer_per_day = 0.5;
  /// Zipf skew of organic item popularity.
  double item_skew = 0.9;
  /// Zipf skew of per-buyer activity: most buyers purchase rarely, so longer
  /// windows keep discovering new entities (Table 4's sublinear |V| growth).
  double buyer_skew = 0.85;

  /// Fraud rings.
  int num_rings = 40;
  int ring_buyers = 12;    ///< colluding buyers per ring
  int ring_items = 6;      ///< boosted items per ring
  /// Collusive purchases per ring buyer per day (dense signature).
  double ring_purchases_per_day = 3.0;
  /// Fraction of each ring's buyers known to the platform (seeds).
  double seed_fraction = 0.25;
  /// A ring is active for a random contiguous span of at least this many
  /// days (activity churn across sliding windows).
  int min_ring_active_days = 20;

  uint64_t seed = 7;
};

/// Output of the generator. Vertex ids: buyers are [0, num_buyers), items are
/// [num_buyers, num_buyers + num_items).
struct TransactionStream {
  TransactionConfig config;
  std::vector<graph::TimedEdge> edges;  ///< buyer -> item, time in days
  /// ring id per vertex, -1 for organic entities (buyers and items).
  std::vector<int> ring_of;
  /// Active span [start, end) in days of each ring's collusive behaviour.
  std::vector<std::pair<double, double>> ring_span;
  /// Blacklisted (seed) buyer ids.
  std::vector<graph::VertexId> seeds;

  graph::VertexId num_entities() const {
    return config.num_buyers + config.num_items;
  }
  bool IsFraud(graph::VertexId v) const { return ring_of[v] >= 0; }

  /// True if v belongs to a ring whose collusive activity overlaps
  /// [window_start, window_end) — the ground truth a window's detector can
  /// be fairly scored against.
  bool IsFraudActiveIn(graph::VertexId v, double window_start,
                       double window_end) const {
    const int r = ring_of[v];
    if (r < 0) return false;
    return ring_span[r].first < window_end &&
           ring_span[r].second > window_start;
  }
};

/// Generates a stream (deterministic in config.seed).
TransactionStream GenerateTransactions(const TransactionConfig& config);

}  // namespace glp::pipeline
