// Detection-quality metrics for the fraud pipeline.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/types.h"

namespace glp::pipeline {

/// Standard binary detection metrics.
struct DetectionMetrics {
  uint64_t true_positives = 0;
  uint64_t false_positives = 0;
  uint64_t false_negatives = 0;

  double Precision() const {
    const uint64_t p = true_positives + false_positives;
    return p == 0 ? 0.0 : static_cast<double>(true_positives) / p;
  }
  double Recall() const {
    const uint64_t r = true_positives + false_negatives;
    return r == 0 ? 0.0 : static_cast<double>(true_positives) / r;
  }
  double F1() const {
    const double p = Precision(), r = Recall();
    return p + r == 0 ? 0.0 : 2 * p * r / (p + r);
  }
  std::string ToString() const;
};

/// Community-size distribution of a labeling.
struct ClusterStats {
  uint64_t num_clusters = 0;
  uint64_t largest = 0;
  double mean_size = 0;

  static ClusterStats Of(const std::vector<graph::Label>& labels);
  std::string ToString() const;
};

}  // namespace glp::pipeline
