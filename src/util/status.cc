#include "util/status.h"

namespace glp {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kCapacityExceeded:
      return "Capacity exceeded";
    case StatusCode::kIoError:
      return "IO error";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

}  // namespace glp
