// Minimal leveled logging + check macros, in the Arrow/RocksDB style.
//
// GLP_CHECK* macros are for programmer errors (invariant violations) and abort;
// recoverable conditions use Status (see util/status.h).

#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace glp {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Process-wide minimum level; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Thread-local trace id stamped onto GLP_LOG lines as `trace=<hex>` while
/// nonzero — the log/trace cross-reference (obs::ScopedSpan sets and
/// restores it; lives here so util does not depend on obs).
uint64_t GetLogTraceId();
void SetLogTraceId(uint64_t trace_id);

namespace internal {

/// Accumulates one log line and emits it (to stderr) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace glp

#define GLP_LOG(level) \
  ::glp::internal::LogMessage(::glp::LogLevel::k##level, __FILE__, __LINE__)

#define GLP_CHECK(cond)                                                     \
  if (!(cond))                                                              \
  ::glp::internal::LogMessage(::glp::LogLevel::kFatal, __FILE__, __LINE__)  \
      << "Check failed: " #cond " "

#define GLP_CHECK_OP(a, b, op)                                                \
  GLP_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "

#define GLP_CHECK_EQ(a, b) GLP_CHECK_OP(a, b, ==)
#define GLP_CHECK_NE(a, b) GLP_CHECK_OP(a, b, !=)
#define GLP_CHECK_LT(a, b) GLP_CHECK_OP(a, b, <)
#define GLP_CHECK_LE(a, b) GLP_CHECK_OP(a, b, <=)
#define GLP_CHECK_GT(a, b) GLP_CHECK_OP(a, b, >)
#define GLP_CHECK_GE(a, b) GLP_CHECK_OP(a, b, >=)

#define GLP_CHECK_OK(expr)                                  \
  do {                                                      \
    ::glp::Status _st = (expr);                             \
    GLP_CHECK(_st.ok()) << _st.ToString();                  \
  } while (0)

#ifdef NDEBUG
#define GLP_DCHECK(cond) \
  while (false) GLP_CHECK(cond)
#else
#define GLP_DCHECK(cond) GLP_CHECK(cond)
#endif
