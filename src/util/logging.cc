#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <ctime>

#include "util/status.h"

namespace glp {

namespace {

/// Reads GLP_LOG_LEVEL (debug|info|warning|error|fatal, or a bare digit)
/// once at startup; unset or unrecognized values keep the kInfo default.
int InitialLevel() {
  const char* env = std::getenv("GLP_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return static_cast<int>(LogLevel::kInfo);
  if (env[0] >= '0' && env[0] <= '4' && env[1] == '\0') return env[0] - '0';
  auto matches = [env](const char* name) {
    for (size_t i = 0;; ++i) {
      const char a = static_cast<char>(std::tolower(env[i]));
      const char b = name[i];
      if (a != b) return b == '\0' && a == '\0';
      if (a == '\0') return true;
    }
  };
  if (matches("debug")) return static_cast<int>(LogLevel::kDebug);
  if (matches("info")) return static_cast<int>(LogLevel::kInfo);
  if (matches("warning") || matches("warn"))
    return static_cast<int>(LogLevel::kWarning);
  if (matches("error")) return static_cast<int>(LogLevel::kError);
  if (matches("fatal")) return static_cast<int>(LogLevel::kFatal);
  return static_cast<int>(LogLevel::kInfo);
}

std::atomic<int> g_log_level{InitialLevel()};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

/// Small dense id per logging thread — readable where std::thread::id prints
/// as an opaque pointer-sized hash.
int ThreadId() {
  static std::atomic<int> next{0};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }
void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

namespace {
thread_local uint64_t t_log_trace_id = 0;
}  // namespace

uint64_t GetLogTraceId() { return t_log_trace_id; }
void SetLogTraceId(uint64_t trace_id) { t_log_trace_id = trace_id; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), enabled_(level >= GetLogLevel()) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    const auto now = std::chrono::system_clock::now();
    const std::time_t secs = std::chrono::system_clock::to_time_t(now);
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        now.time_since_epoch())
                        .count() %
                    1000000;
    std::tm tm{};
    localtime_r(&secs, &tm);
    char ts[40];
    std::snprintf(ts, sizeof(ts), "%02d%02d %02d:%02d:%02d.%06d",
                  tm.tm_mon + 1, tm.tm_mday, tm.tm_hour, tm.tm_min, tm.tm_sec,
                  static_cast<int>(us));
    stream_ << "[" << LevelName(level) << " " << ts << " t" << ThreadId();
    if (t_log_trace_id != 0) {
      char trace[24];
      std::snprintf(trace, sizeof(trace), " trace=%016llx",
                    static_cast<unsigned long long>(t_log_trace_id));
      stream_ << trace;
    }
    stream_ << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace glp
