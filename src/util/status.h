// Status / Result error-handling primitives, modeled after the Arrow / RocksDB
// idiom: library code on hot paths never throws; fallible operations return a
// Status (or Result<T>) that callers must consume.

#pragma once

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <variant>

namespace glp {

/// Machine-readable category of a failure.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kCapacityExceeded,
  kIoError,
  kNotImplemented,
  kInternal,
  kCancelled,
};

/// Returns a short human-readable name for a StatusCode ("OK", "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus an optional message.
///
/// The OK status carries no allocation; error statuses allocate a small state
/// block. Copyable and cheaply movable.
class Status {
 public:
  Status() noexcept = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<const State>(State{code, std::move(msg)});
    }
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const noexcept { return state_ == nullptr; }
  StatusCode code() const noexcept { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const noexcept {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsCapacityExceeded() const { return code() == StatusCode::kCapacityExceeded; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    std::string s = StatusCodeToString(state_->code);
    if (!state_->msg.empty()) {
      s += ": ";
      s += state_->msg;
    }
    return s;
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<const State> state_;
};

/// \brief Either a value of type T or an error Status.
///
/// `Result` is the return type for fallible factories and parsers. Access the
/// value only after checking `ok()`; `ValueOrDie()` aborts on error (for tests
/// and examples where failure is a bug).
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}               // NOLINT implicit
  Result(Status status) : v_(std::move(status)) {}        // NOLINT implicit

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(v_);
  }

  T& value() & { return std::get<T>(v_); }
  const T& value() const& { return std::get<T>(v_); }
  T&& value() && { return std::get<T>(std::move(v_)); }

  /// Returns the value, aborting the process with the error message if this
  /// Result holds an error. Intended for tests and examples only.
  T ValueOrDie() && {
    if (!ok()) {
      std::fprintf(stderr, "Result::ValueOrDie on error: %s\n",
                   status().ToString().c_str());
      std::abort();
    }
    return std::get<T>(std::move(v_));
  }

  T value_or(T fallback) const& { return ok() ? std::get<T>(v_) : std::move(fallback); }

 private:
  std::variant<T, Status> v_;
};

}  // namespace glp

/// Propagates a non-OK Status to the caller.
#define GLP_RETURN_NOT_OK(expr)              \
  do {                                       \
    ::glp::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (0)

/// Assigns the value of a Result expression to `lhs`, propagating errors.
#define GLP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#define GLP_CONCAT_INNER(a, b) a##b
#define GLP_CONCAT(a, b) GLP_CONCAT_INNER(a, b)

#define GLP_ASSIGN_OR_RETURN(lhs, expr) \
  GLP_ASSIGN_OR_RETURN_IMPL(GLP_CONCAT(_res_, __LINE__), lhs, expr)
