// Hash mixing functions shared by the sketch structures and hash tables.
//
// The CMS analysis (paper §4.1, Lemma 2) assumes pairwise-independent hash
// functions; we use multiply-shift families seeded per instance, which satisfy
// the approximate-independence the bound needs in practice.

#pragma once

#include <cstdint>

namespace glp {

/// Strong 64-bit finalizer (MurmurHash3 fmix64).
inline uint64_t HashMix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Seeded 64-bit hash: mixes the value with a per-instance seed.
inline uint64_t HashSeeded(uint64_t x, uint64_t seed) {
  return HashMix64(x ^ (seed * 0x9e3779b97f4a7c15ULL));
}

/// Maps a 64-bit hash to a bucket in [0, buckets) without modulo bias
/// (fixed-point multiply).
inline uint32_t HashToBucket(uint64_t h, uint32_t buckets) {
  return static_cast<uint32_t>((static_cast<__uint128_t>(h) * buckets) >> 64);
}

}  // namespace glp
