// Fixed-size thread pool with a blocking ParallelFor, used by the CPU LP
// engines and by the SIMT simulator to run thread blocks concurrently.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace glp {

/// \brief A fixed pool of worker threads executing submitted closures.
///
/// Work items are `void()` closures. `ParallelFor` partitions an index range
/// into contiguous chunks, runs them on the workers (the calling thread also
/// participates), and blocks until all chunks finish. Exceptions escaping a
/// work item terminate the process by design — hot paths report errors via
/// Status, not throws.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1). `num_threads == 0`
  /// means `std::thread::hardware_concurrency()`.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(begin..end) partitioned into chunks of at most `grain` indices.
  /// fn is invoked as fn(chunk_begin, chunk_end). Blocks until complete.
  void ParallelFor(int64_t begin, int64_t end,
                   const std::function<void(int64_t, int64_t)>& fn,
                   int64_t grain = 0);

  /// Runs fn(i) for every i in [0, n) with one task per worker using static
  /// round-robin assignment; fn is invoked as fn(worker_index).
  void RunOnAllWorkers(const std::function<void(int)>& fn);

  /// A process-wide default pool (hardware concurrency).
  static ThreadPool* Default();

  // --- Telemetry (plain atomics; the obs layer polls these through a
  // registry collector so util stays free of any obs dependency) ---

  /// Tasks currently waiting in the queue.
  int64_t queue_depth() const {
    return queue_depth_.load(std::memory_order_relaxed);
  }
  /// Tasks dequeued and executed by workers since construction.
  int64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }
  /// Workers currently running a task (excludes the caller thread's
  /// ParallelFor participation).
  int busy_workers() const {
    return busy_workers_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::atomic<int64_t> queue_depth_{0};
  std::atomic<int64_t> tasks_executed_{0};
  std::atomic<int> busy_workers_{0};
};

}  // namespace glp
