// Minimal streaming JSON writer shared by every machine-readable emitter
// (server stats, phase breakdowns, trace files, metric snapshots).
//
// The writer tracks the container stack and inserts commas itself, so call
// sites read like the document they produce. Doubles render with shortest
// round-trip precision; non-finite values (NaN/Inf, e.g. a percentile of an
// empty series) serialize as null — JSON has no literal for them, and
// emitting "nan" silently produces unparseable output.

#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "util/logging.h"

namespace glp::json {

/// Escapes `s` into a JSON string literal body (no surrounding quotes).
inline std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Renders a double as a JSON number token; non-finite values become "null".
/// Uses the shortest "%.*g" precision that round-trips (keeps 0.25 as
/// "0.25", not "0.25000000000000000").
inline std::string NumberToken(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    double back;
    if (std::sscanf(buf, "%lf", &back) == 1 && back == v) break;
  }
  return buf;
}

/// \brief Streaming writer building one JSON document in memory.
///
/// Scopes: BeginObject/EndObject, BeginArray/EndArray. Inside an object,
/// Key() must precede each value; inside an array, values follow directly.
/// Misuse (value without key in an object, unbalanced ends) is a programmer
/// error and GLP_DCHECKs.
class Writer {
 public:
  Writer() { stack_.push_back({Frame::kTop, 0}); }

  Writer& BeginObject() {
    BeforeValue();
    out_ += '{';
    stack_.push_back({Frame::kObject, 0});
    return *this;
  }
  Writer& EndObject() {
    GLP_DCHECK(stack_.back().type == Frame::kObject);
    stack_.pop_back();
    out_ += '}';
    return *this;
  }
  Writer& BeginArray() {
    BeforeValue();
    out_ += '[';
    stack_.push_back({Frame::kArray, 0});
    return *this;
  }
  Writer& EndArray() {
    GLP_DCHECK(stack_.back().type == Frame::kArray);
    stack_.pop_back();
    out_ += ']';
    return *this;
  }

  Writer& Key(std::string_view k) {
    GLP_DCHECK(stack_.back().type == Frame::kObject);
    if (stack_.back().count > 0) out_ += ',';
    ++stack_.back().count;
    out_ += '"';
    out_ += Escape(k);
    out_ += "\":";
    pending_value_ = true;
    return *this;
  }

  Writer& String(std::string_view v) {
    BeforeValue();
    out_ += '"';
    out_ += Escape(v);
    out_ += '"';
    return *this;
  }
  Writer& Int(int64_t v) {
    BeforeValue();
    out_ += std::to_string(v);
    return *this;
  }
  Writer& Uint(uint64_t v) {
    BeforeValue();
    out_ += std::to_string(v);
    return *this;
  }
  Writer& Bool(bool v) {
    BeforeValue();
    out_ += v ? "true" : "false";
    return *this;
  }
  Writer& Null() {
    BeforeValue();
    out_ += "null";
    return *this;
  }
  /// Shortest round-trip rendering; NaN/Inf become null.
  Writer& Double(double v) {
    BeforeValue();
    out_ += NumberToken(v);
    return *this;
  }
  /// Fixed-point rendering (trace timestamps); NaN/Inf become null.
  Writer& DoubleFixed(double v, int decimals) {
    BeforeValue();
    if (!std::isfinite(v)) {
      out_ += "null";
    } else {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
      out_ += buf;
    }
    return *this;
  }
  /// Embeds a pre-rendered JSON value verbatim (caller guarantees validity).
  Writer& Raw(std::string_view v) {
    BeforeValue();
    out_ += v;
    return *this;
  }

  /// The finished document. All scopes must be closed.
  std::string Take() {
    GLP_DCHECK(stack_.size() == 1);
    return std::move(out_);
  }
  const std::string& str() const { return out_; }

 private:
  enum class Frame { kTop, kObject, kArray };
  struct Scope {
    Frame type;
    int count;
  };

  /// Comma bookkeeping before any value token. A value completing a Key()
  /// was already counted (and separated) by the key itself.
  void BeforeValue() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    Scope& s = stack_.back();
    // In an object, a bare value without Key() is a bug; at top level only
    // one document is allowed.
    GLP_DCHECK(s.type != Frame::kObject);
    GLP_DCHECK(s.type != Frame::kTop || s.count == 0);
    if (s.count > 0) out_ += ',';
    ++s.count;
  }

  std::string out_;
  std::vector<Scope> stack_;
  bool pending_value_ = false;
};

}  // namespace glp::json
