// Named failpoint injection — the fault-injection substrate of the
// resilience layer (DESIGN.md §4.8). Production code marks recoverable
// choke points with GLP_FAILPOINT("layer.point"); a chaos harness (or the
// GLP_FAILPOINTS environment variable) arms named points with an action
// (return an error Status, add latency, or both) and a trigger policy
// (always, once, every Nth hit, or probabilistic with a seeded RNG), so a
// replayed stream exercises the exact same fault schedule twice.
//
// The disarmed fast path is one relaxed atomic load — no lock, no lookup —
// so leaving failpoints compiled into release binaries is free.
//
// Config grammar (GLP_FAILPOINTS or FailpointRegistry::Parse):
//
//   spec    := entry (';' entry)*
//   entry   := name '=' action ('+' action)* ('@' trigger)?
//   action  := 'off' | 'error' [ '(' code ')' ] | 'delay' '(' millis ')'
//   code    := invalid | oob | notfound | exists | capacity | io |
//              notimpl | internal | cancelled        (default: internal)
//   trigger := 'always' | 'once' | 'every' N | '1in' N | 'p' FLOAT
//
//   GLP_FAILPOINTS='pipeline.lp_dispatch=error(io)@every3;serve.tick=delay(5)@p0.25'
//
// Probabilistic triggers draw from a per-point RNG seeded from
// GLP_FAILPOINTS_SEED (or set_seed), so schedules are reproducible.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace glp::fail {

/// What an armed failpoint does when its trigger fires.
struct FailpointSpec {
  /// Status to inject; kOk means "no error" (latency-only point).
  StatusCode error_code = StatusCode::kOk;
  /// Message of the injected Status; empty derives "injected fault at
  /// <name>".
  std::string message;
  /// Added latency per fire, in milliseconds.
  double delay_ms = 0;

  enum class Trigger { kAlways, kOnce, kEveryNth, kProbability };
  Trigger trigger = Trigger::kAlways;
  /// kEveryNth: fires on hits N, 2N, 3N, ... (hit counting starts at 1).
  uint64_t every_n = 1;
  /// kProbability: per-hit fire probability.
  double probability = 1.0;
};

/// \brief Process-wide registry of named failpoints.
///
/// Thread-safe: production threads call Evaluate through GLP_FAILPOINT
/// concurrently with a test thread (re)arming points. The first access
/// loads the GLP_FAILPOINTS / GLP_FAILPOINTS_SEED environment.
class FailpointRegistry {
 public:
  static FailpointRegistry& Global();

  /// Arms (or re-arms, resetting counters) one named point.
  void Configure(std::string name, FailpointSpec spec);
  /// Disarms one point; returns whether it was armed.
  bool Clear(const std::string& name);
  /// Disarms everything (including env-sourced points).
  void ClearAll();
  /// Restores exactly the GLP_FAILPOINTS environment configuration —
  /// what tests call to isolate themselves without erasing ambient chaos
  /// (e.g. the CI chaos job's env-armed latency points).
  void ResetToEnv();

  /// Parses the config grammar above and arms every entry. On a malformed
  /// entry nothing changes and an InvalidArgument describes the offender.
  Status Parse(const std::string& config);

  /// Seed for probabilistic triggers armed after this call.
  void set_seed(uint64_t seed);

  /// Slow path of Inject(): counts the hit, applies the trigger, sleeps
  /// the delay (outside the registry lock) and returns the injected
  /// Status. OK when the point is disarmed or the trigger abstains.
  Status Evaluate(const char* name);

  /// Times the named point was evaluated / actually fired (0 if unknown).
  uint64_t hits(const std::string& name) const;
  uint64_t fires(const std::string& name) const;
  /// (name, fires) for every armed point — the chaos harness's audit, and
  /// what serve exports as glp_failpoint_fires.
  std::vector<std::pair<std::string, uint64_t>> FireCounts() const;

  bool any_active() const {
    return active_.load(std::memory_order_acquire) > 0;
  }

 private:
  FailpointRegistry();

  struct Point {
    FailpointSpec spec;
    uint64_t hits = 0;
    uint64_t fires = 0;
    Rng rng;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, Point> points_;
  std::atomic<int> active_{0};
  uint64_t seed_ = 0;
  std::string env_config_;  // captured GLP_FAILPOINTS at startup
  uint64_t env_seed_ = 0;
};

/// Evaluates the named failpoint. One relaxed load when nothing is armed.
inline Status Inject(const char* name) {
  FailpointRegistry& r = FailpointRegistry::Global();
  if (!r.any_active()) return Status::OK();
  return r.Evaluate(name);
}

}  // namespace glp::fail

/// Early-returns the injected Status from the enclosing function when the
/// named failpoint fires with an error action (latency-only fires just
/// sleep). The standard way to thread a failpoint into a Status-returning
/// path.
#define GLP_FAILPOINT(name)                        \
  do {                                             \
    ::glp::Status _fp = ::glp::fail::Inject(name); \
    if (!_fp.ok()) return _fp;                     \
  } while (0)
