#include "util/failpoint.h"

#include <chrono>
#include <cctype>
#include <cstdlib>
#include <thread>

#include "util/logging.h"

namespace glp::fail {
namespace {

/// Parses an error-code name of the config grammar.
bool ParseCode(const std::string& s, StatusCode* code) {
  if (s.empty() || s == "internal") *code = StatusCode::kInternal;
  else if (s == "invalid") *code = StatusCode::kInvalidArgument;
  else if (s == "oob") *code = StatusCode::kOutOfRange;
  else if (s == "notfound") *code = StatusCode::kNotFound;
  else if (s == "exists") *code = StatusCode::kAlreadyExists;
  else if (s == "capacity") *code = StatusCode::kCapacityExceeded;
  else if (s == "io") *code = StatusCode::kIoError;
  else if (s == "notimpl") *code = StatusCode::kNotImplemented;
  else if (s == "cancelled") *code = StatusCode::kCancelled;
  else return false;
  return true;
}

/// Splits "action(arg)" into its two parts; arg empty when absent.
bool SplitCall(const std::string& s, std::string* fn, std::string* arg) {
  const size_t open = s.find('(');
  if (open == std::string::npos) {
    *fn = s;
    arg->clear();
    return true;
  }
  if (s.back() != ')') return false;
  *fn = s.substr(0, open);
  *arg = s.substr(open + 1, s.size() - open - 2);
  return true;
}

Status ParseEntry(const std::string& entry, std::string* name,
                  FailpointSpec* spec, bool* off) {
  *off = false;
  const size_t eq = entry.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument("failpoint entry missing 'name=': '" +
                                   entry + "'");
  }
  *name = entry.substr(0, eq);
  std::string rest = entry.substr(eq + 1);

  std::string trigger;
  const size_t at = rest.find('@');
  if (at != std::string::npos) {
    trigger = rest.substr(at + 1);
    rest = rest.substr(0, at);
  }

  // Actions, '+'-separated.
  size_t pos = 0;
  while (pos <= rest.size()) {
    size_t plus = rest.find('+', pos);
    if (plus == std::string::npos) plus = rest.size();
    const std::string action = rest.substr(pos, plus - pos);
    pos = plus + 1;
    std::string fn, arg;
    if (!SplitCall(action, &fn, &arg)) {
      return Status::InvalidArgument("malformed failpoint action: '" +
                                     action + "'");
    }
    if (fn == "off") {
      *off = true;
    } else if (fn == "error") {
      if (!ParseCode(arg, &spec->error_code)) {
        return Status::InvalidArgument("unknown failpoint error code: '" +
                                       arg + "'");
      }
    } else if (fn == "delay") {
      char* end = nullptr;
      spec->delay_ms = std::strtod(arg.c_str(), &end);
      if (arg.empty() || end == nullptr || *end != '\0' ||
          spec->delay_ms < 0) {
        return Status::InvalidArgument("bad failpoint delay: '" + arg + "'");
      }
    } else {
      return Status::InvalidArgument("unknown failpoint action: '" + fn +
                                     "'");
    }
    if (plus == rest.size()) break;
  }

  // Trigger.
  if (trigger.empty() || trigger == "always") {
    spec->trigger = FailpointSpec::Trigger::kAlways;
  } else if (trigger == "once") {
    spec->trigger = FailpointSpec::Trigger::kOnce;
  } else if (trigger.rfind("every", 0) == 0) {
    spec->trigger = FailpointSpec::Trigger::kEveryNth;
    spec->every_n = std::strtoull(trigger.c_str() + 5, nullptr, 10);
    if (spec->every_n == 0) {
      return Status::InvalidArgument("bad failpoint trigger: '" + trigger +
                                     "'");
    }
  } else if (trigger.rfind("1in", 0) == 0) {
    const uint64_t n = std::strtoull(trigger.c_str() + 3, nullptr, 10);
    if (n == 0) {
      return Status::InvalidArgument("bad failpoint trigger: '" + trigger +
                                     "'");
    }
    spec->trigger = FailpointSpec::Trigger::kProbability;
    spec->probability = 1.0 / static_cast<double>(n);
  } else if (trigger[0] == 'p') {
    spec->trigger = FailpointSpec::Trigger::kProbability;
    char* end = nullptr;
    spec->probability = std::strtod(trigger.c_str() + 1, &end);
    if (end == nullptr || *end != '\0' || spec->probability < 0 ||
        spec->probability > 1) {
      return Status::InvalidArgument("bad failpoint trigger: '" + trigger +
                                     "'");
    }
  } else {
    return Status::InvalidArgument("unknown failpoint trigger: '" + trigger +
                                   "'");
  }
  return Status::OK();
}

}  // namespace

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

FailpointRegistry::FailpointRegistry() {
  if (const char* seed = std::getenv("GLP_FAILPOINTS_SEED")) {
    env_seed_ = std::strtoull(seed, nullptr, 10);
  }
  seed_ = env_seed_;
  if (const char* cfg = std::getenv("GLP_FAILPOINTS")) {
    env_config_ = cfg;
  }
  if (!env_config_.empty()) {
    const Status st = Parse(env_config_);
    if (!st.ok()) {
      GLP_LOG(Warning) << "ignoring malformed GLP_FAILPOINTS: "
                       << st.ToString();
    }
  }
}

void FailpointRegistry::Configure(std::string name, FailpointSpec spec) {
  std::lock_guard<std::mutex> lk(mu_);
  Point& p = points_[name];
  p.spec = std::move(spec);
  p.hits = 0;
  p.fires = 0;
  p.rng = Rng(seed_ ^ std::hash<std::string>{}(name) ^
              0x9e3779b97f4a7c15ULL);
  active_.store(static_cast<int>(points_.size()), std::memory_order_release);
}

bool FailpointRegistry::Clear(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  const bool erased = points_.erase(name) > 0;
  active_.store(static_cast<int>(points_.size()), std::memory_order_release);
  return erased;
}

void FailpointRegistry::ClearAll() {
  std::lock_guard<std::mutex> lk(mu_);
  points_.clear();
  active_.store(0, std::memory_order_release);
}

void FailpointRegistry::ResetToEnv() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    points_.clear();
    seed_ = env_seed_;
    active_.store(0, std::memory_order_release);
  }
  if (!env_config_.empty()) {
    const Status st = Parse(env_config_);
    if (!st.ok()) {
      GLP_LOG(Warning) << "ignoring malformed GLP_FAILPOINTS: "
                       << st.ToString();
    }
  }
}

void FailpointRegistry::set_seed(uint64_t seed) {
  std::lock_guard<std::mutex> lk(mu_);
  seed_ = seed;
}

Status FailpointRegistry::Parse(const std::string& config) {
  // Validate every entry before arming any (all-or-nothing).
  struct Parsed {
    std::string name;
    FailpointSpec spec;
    bool off;
  };
  std::vector<Parsed> entries;
  size_t pos = 0;
  while (pos <= config.size()) {
    size_t sep = config.find(';', pos);
    if (sep == std::string::npos) sep = config.size();
    std::string entry = config.substr(pos, sep - pos);
    pos = sep + 1;
    // Trim whitespace.
    while (!entry.empty() && std::isspace(static_cast<unsigned char>(
                                 entry.front()))) {
      entry.erase(entry.begin());
    }
    while (!entry.empty() &&
           std::isspace(static_cast<unsigned char>(entry.back()))) {
      entry.pop_back();
    }
    if (!entry.empty()) {
      Parsed p;
      GLP_RETURN_NOT_OK(ParseEntry(entry, &p.name, &p.spec, &p.off));
      entries.push_back(std::move(p));
    }
    if (sep == config.size()) break;
  }
  for (Parsed& p : entries) {
    if (p.off) {
      Clear(p.name);
    } else {
      Configure(std::move(p.name), std::move(p.spec));
    }
  }
  return Status::OK();
}

Status FailpointRegistry::Evaluate(const char* name) {
  StatusCode code = StatusCode::kOk;
  std::string message;
  double delay_ms = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = points_.find(name);
    if (it == points_.end()) return Status::OK();
    Point& p = it->second;
    ++p.hits;
    bool fire = false;
    switch (p.spec.trigger) {
      case FailpointSpec::Trigger::kAlways:
        fire = true;
        break;
      case FailpointSpec::Trigger::kOnce:
        fire = p.hits == 1;
        break;
      case FailpointSpec::Trigger::kEveryNth:
        fire = p.hits % p.spec.every_n == 0;
        break;
      case FailpointSpec::Trigger::kProbability:
        fire = p.rng.NextBool(p.spec.probability);
        break;
    }
    if (!fire) return Status::OK();
    ++p.fires;
    code = p.spec.error_code;
    delay_ms = p.spec.delay_ms;
    message = p.spec.message.empty()
                  ? "injected fault at " + std::string(name)
                  : p.spec.message;
  }
  // Sleep outside the lock so a latency point never serializes other
  // points' evaluations.
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        delay_ms));
  }
  if (code == StatusCode::kOk) return Status::OK();
  return Status(code, std::move(message));
}

uint64_t FailpointRegistry::hits(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.hits;
}

uint64_t FailpointRegistry::fires(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.fires;
}

std::vector<std::pair<std::string, uint64_t>> FailpointRegistry::FireCounts()
    const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(points_.size());
  for (const auto& [name, p] : points_) out.emplace_back(name, p.fires);
  return out;
}

}  // namespace glp::fail
