#include "util/thread_pool.h"

#include <algorithm>
#include <memory>

#include "util/logging.h"

namespace glp {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 4;
  }
  // The calling thread participates in ParallelFor, so spawn one fewer worker.
  int workers = std::max(0, num_threads - 1);
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
      queue_depth_.fetch_sub(1, std::memory_order_relaxed);
    }
    busy_workers_.fetch_add(1, std::memory_order_relaxed);
    task();
    busy_workers_.fetch_sub(1, std::memory_order_relaxed);
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end,
                             const std::function<void(int64_t, int64_t)>& fn,
                             int64_t grain) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  const int threads = num_threads();
  if (grain <= 0) {
    grain = std::max<int64_t>(1, n / (threads * 8));
  }
  const int64_t num_chunks = (n + grain - 1) / grain;
  if (num_chunks == 1 || threads == 1) {
    fn(begin, end);
    return;
  }

  // ParallelFor returns as soon as all chunks are done, but queued tasks the
  // workers never popped can still run (or be destroyed) after that — so all
  // state a task touches lives in a shared control block, never on this
  // call's stack. A late-popped task sees next_chunk exhausted and exits.
  struct ControlBlock {
    std::function<void(int64_t, int64_t)> fn;
    int64_t begin;
    int64_t end;
    int64_t grain;
    int64_t num_chunks;
    std::atomic<int64_t> next_chunk{0};
    std::atomic<int64_t> done_chunks{0};
    std::mutex done_mu;
    std::condition_variable done_cv;
  };
  auto state = std::make_shared<ControlBlock>();
  state->fn = fn;
  state->begin = begin;
  state->end = end;
  state->grain = grain;
  state->num_chunks = num_chunks;

  auto run_chunks = [state] {
    for (;;) {
      const int64_t c =
          state->next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= state->num_chunks) break;
      const int64_t lo = state->begin + c * state->grain;
      const int64_t hi = std::min(state->end, lo + state->grain);
      state->fn(lo, hi);
      if (state->done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          state->num_chunks) {
        std::lock_guard<std::mutex> lock(state->done_mu);
        state->done_cv.notify_all();
      }
    }
  };

  // One task per worker; each task drains chunks until exhausted.
  const int tasks = std::min<int64_t>(threads - 1, num_chunks);
  {
    std::lock_guard<std::mutex> lock(mu_);
    GLP_CHECK(!shutdown_);
    for (int i = 0; i < tasks; ++i) queue_.push(run_chunks);
    queue_depth_.fetch_add(tasks, std::memory_order_relaxed);
  }
  cv_.notify_all();

  run_chunks();  // The calling thread participates.

  std::unique_lock<std::mutex> lock(state->done_mu);
  state->done_cv.wait(
      lock, [&] { return state->done_chunks.load() == state->num_chunks; });
}

void ThreadPool::RunOnAllWorkers(const std::function<void(int)>& fn) {
  const int threads = num_threads();
  // Shared control block for the same reason as in ParallelFor: a worker
  // that bumps `done` to the final count can still be touching the mutex /
  // condvar while the caller's wait predicate is already satisfied, so the
  // synchronization state must outlive the call frame.
  struct ControlBlock {
    std::function<void(int)> fn;
    int threads;
    std::atomic<int> done{0};
    std::mutex done_mu;
    std::condition_variable done_cv;
  };
  auto state = std::make_shared<ControlBlock>();
  state->fn = fn;
  state->threads = threads;
  auto finish_one = [](const std::shared_ptr<ControlBlock>& s) {
    if (s->done.fetch_add(1) + 1 == s->threads) {
      std::lock_guard<std::mutex> lock(s->done_mu);
      s->done_cv.notify_all();
    }
  };
  {
    std::lock_guard<std::mutex> lock(mu_);
    GLP_CHECK(!shutdown_);
    for (int i = 1; i < threads; ++i) {
      queue_.push([state, finish_one, i] {
        state->fn(i);
        finish_one(state);
      });
    }
    queue_depth_.fetch_add(threads - 1, std::memory_order_relaxed);
  }
  cv_.notify_all();
  state->fn(0);
  finish_one(state);
  std::unique_lock<std::mutex> lock(state->done_mu);
  state->done_cv.wait(
      lock, [&] { return state->done.load() == state->threads; });
}

ThreadPool* ThreadPool::Default() {
  static ThreadPool pool(0);
  return &pool;
}

}  // namespace glp
