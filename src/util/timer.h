// Wall-clock timing helpers for benchmark harnesses.

#pragma once

#include <chrono>
#include <cstdint>

namespace glp {

/// Monotonic stopwatch returning elapsed seconds.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace glp
