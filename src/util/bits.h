// Small bit-manipulation helpers shared across layers.

#pragma once

#include <cstdint>

namespace glp {

/// Smallest power of two >= x, computed in 64 bits so extreme inputs (e.g.
/// a 3-billion-edge degree estimate) cannot hit signed-shift UB, and clamped
/// to 2^30 so the result always fits the int capacity fields it sizes.
/// `floor` is the minimum returned capacity and must itself be a power of
/// two (callers pick 8 for GPU shared-memory tables, 16 for the CPU label
/// counter).
inline int NextPow2(int64_t x, int64_t floor = 8) {
  int64_t p = floor;
  while (p < x && p < (int64_t{1} << 30)) p <<= 1;
  return static_cast<int>(p);
}

}  // namespace glp
