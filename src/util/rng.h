// Deterministic, fast pseudo-random number generation.
//
// All workload generators and randomized algorithms in this repository take an
// explicit seed and use these generators, so every experiment is reproducible
// bit-for-bit across runs and machines.

#pragma once

#include <cstdint>

namespace glp {

/// SplitMix64 — used to expand a single seed into independent stream seeds.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// \brief xoshiro256** — the repository-wide PRNG.
///
/// Satisfies the UniformRandomBitGenerator requirements so it can be used with
/// <random> distributions, but also provides the handful of inline helpers the
/// generators need (uniform ints, doubles, bounded ranges) without the libstdc++
/// distribution-object overhead.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    uint64_t sm = seed;
    for (auto& w : s_) w = SplitMix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  uint64_t operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Bounded(uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      uint64_t threshold = (-bound) % bound;
      while (lo < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Bounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// A new Rng whose stream is independent of this one (seeded by the stream).
  Rng Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace glp
